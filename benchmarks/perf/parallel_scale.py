"""Parallel-DES benchmarks: sharded conservative windows at 8K-32K ranks.

The tentpole claim of the parallel backend is that the *full-fidelity*
direct-send frame — every compositing message a real DES event, no
analytic shortcut — stays affordable past 2048 ranks by sharding the
engine across worker processes under conservative safe windows.  These
benchmarks pin that down with committed numbers:

* ``parallel_directsend_2048_w2``  — the 2048-rank frame through the
  2-worker backend (the CI ``parallel-des-smoke`` envelope).
* ``parallel_strong_scaling_8192`` — the 8192-rank m=n frame at
  1/2/4/8 workers: the strong-scaling curve of the backend itself.
* ``parallel_directsend_32768``    — the full 32768-rank m=n frame
  (~2.05M simulated messages), the paper's Fig. 8 scale.
* ``parallel_directsend_32768_m2048`` — the same frame with the
  compositor count limited to m=2048 (the paper's mitigation); the
  meta block records the m=n / limited-m simulated-time ratio.

Results are bitwise identical across worker counts by construction
(see DESIGN.md §12), so the committed simulated-time numbers are
machine-independent; the wall-clock numbers are honest measurements on
whatever host wrote the baseline, whose CPU count is recorded in the
meta block.  On a single-core host the worker processes time-share and
the curve records the synchronization overhead rather than a speedup.
"""

from __future__ import annotations

import os
import time

#: Wall-clock ceiling (seconds) enforced by the CI parallel-des-smoke
#: job for the 2-worker 2048-rank frame.
PARALLEL_SMOKE_BUDGET_S = 120.0

#: Wall-clock ceiling for the full 32768-rank m=n frame — the
#: acceptance envelope of the 32K tentpole run.
PARALLEL_32K_WALL_BUDGET_S = 600.0

SCALING_RANKS = 8192
SCALING_WORKERS = (1, 2, 4, 8)

RANKS_32K = 32768
LIMITED_M = 2048

GRID = (128, 128, 128)
IMAGE = 512


def _schedule(ranks: int, m: int):
    from repro.compositing.schedule import schedule_from_geometry
    from repro.render.camera import Camera
    from repro.render.decomposition import BlockDecomposition

    cam = Camera.looking_at_volume(GRID, width=IMAGE, height=IMAGE)
    dec = BlockDecomposition(GRID, ranks)
    return schedule_from_geometry(dec, cam, m)


def _run_frame(ranks: int, schedule, workers: int):
    """One direct-send frame through the parallel backend; returns
    (wall seconds, WorldResult)."""
    from benchmarks.perf.des_scale import _directsend_program
    from repro.vmpi import MPIWorld, ParallelConfig

    program = _directsend_program(schedule)
    world = MPIWorld.for_cores(ranks)
    t0 = time.perf_counter()
    res = world.run(program, parallel=ParallelConfig(workers=workers))
    return time.perf_counter() - t0, res


def bench_parallel_directsend_2048_w2(repeats: int = 1) -> dict:
    """The 2048-rank m=n frame through 2 workers (CI smoke envelope)."""
    from benchmarks.perf.suite import _timeit

    schedule = _schedule(2048, 2048)

    def run():
        return _run_frame(2048, schedule, workers=2)[1]

    seconds, res = _timeit(run, repeats)
    return {
        "name": "parallel_directsend_2048_w2",
        "guard": True,
        "config": {"ranks": 2048, "workers": 2, "grid": GRID[0], "image": IMAGE},
        "seconds": seconds,
        "wall_budget_s": PARALLEL_SMOKE_BUDGET_S,
        "within_budget": seconds <= PARALLEL_SMOKE_BUDGET_S,
        "sim_elapsed_s": float(res.elapsed_s),
        "messages": int(res.messages),
    }


def bench_parallel_strong_scaling_8192(repeats: int = 1) -> dict:
    """The 8192-rank m=n frame at 1/2/4/8 workers, single timed run
    each (the schedule is built once, outside the timed region).

    ``seconds`` is the 4-worker wall clock; the full curve and the
    4-worker speedup over 1 worker ride along as extra metrics.  The
    per-worker results are asserted identical before reporting — a
    scaling number for diverging results would be meaningless.
    """
    schedule = _schedule(SCALING_RANKS, SCALING_RANKS)
    curve: dict[str, float] = {}
    fingerprint = None
    sim_elapsed = 0.0
    messages = 0
    for w in SCALING_WORKERS:
        wall, res = _run_frame(SCALING_RANKS, schedule, workers=w)
        curve[str(w)] = wall
        fp = (float(res.elapsed_s), int(res.messages), int(res.bytes_sent))
        if fingerprint is None:
            fingerprint = fp
            sim_elapsed, messages = fp[0], fp[1]
        elif fp != fingerprint:
            raise AssertionError(
                f"worker-count variance at w={w}: {fp} != {fingerprint}"
            )
    return {
        "name": "parallel_strong_scaling_8192",
        "guard": False,  # four full 8192-rank frames: too slow to re-run per guard
        "config": {
            "ranks": SCALING_RANKS,
            "workers": list(SCALING_WORKERS),
            "grid": GRID[0],
            "image": IMAGE,
        },
        "seconds": curve["4"],
        "workers_wall_s": curve,
        "speedup_4w_vs_1w": curve["1"] / curve["4"],
        "host_cpu_count": os.cpu_count(),
        "sim_elapsed_s": sim_elapsed,
        "messages": messages,
    }


def _bench_32k(name: str, m: int) -> dict:
    schedule = _schedule(RANKS_32K, m)
    wall, res = _run_frame(RANKS_32K, schedule, workers=2)
    return {
        "name": name,
        "guard": False,  # minutes of wall clock: recorded, not re-timed per guard
        "config": {
            "ranks": RANKS_32K,
            "compositors": m,
            "workers": 2,
            "grid": GRID[0],
            "image": IMAGE,
        },
        "seconds": wall,
        "wall_budget_s": PARALLEL_32K_WALL_BUDGET_S,
        "within_budget": wall <= PARALLEL_32K_WALL_BUDGET_S,
        "sim_elapsed_s": float(res.elapsed_s),
        "messages": int(res.messages),
        "schedule_messages": int(schedule.total_messages),
    }


def bench_parallel_directsend_32768(repeats: int = 1) -> dict:
    """Full-fidelity 32768-rank m=n direct-send frame (2 workers)."""
    return _bench_32k("parallel_directsend_32768", RANKS_32K)


def bench_parallel_directsend_32768_m2048(repeats: int = 1) -> dict:
    """The 32768-rank frame with compositors limited to m=2048."""
    return _bench_32k("parallel_directsend_32768_m2048", LIMITED_M)


PARALLEL_BENCHMARKS = {
    "parallel_directsend_2048_w2":
        (bench_parallel_directsend_2048_w2, "BENCH_parallel.json"),
    "parallel_strong_scaling_8192":
        (bench_parallel_strong_scaling_8192, "BENCH_parallel.json"),
    "parallel_directsend_32768":
        (bench_parallel_directsend_32768, "BENCH_parallel.json"),
    "parallel_directsend_32768_m2048":
        (bench_parallel_directsend_32768_m2048, "BENCH_parallel.json"),
}
