"""Table I — "Published parallel volume rendering system scales."

Context, not an experiment: the literature survey the paper positions
itself against, with this work's 90-billion-element / 32K-core row.
"""

from benchmarks.conftest import write_result
from repro.analysis.reports import PUBLISHED_SCALES_TABLE1, format_table


def test_table1_survey(benchmark, results_dir):
    def build() -> str:
        rows = [
            [name, cpus, billions, image, year, ref]
            for name, cpus, billions, image, year, ref in PUBLISHED_SCALES_TABLE1
        ]
        return "Table I: published parallel volume rendering system scales\n" + format_table(
            ["dataset", "CPUs", "10^9 elements", "image", "year", "reference"], rows
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    ours = PUBLISHED_SCALES_TABLE1[-1]
    others = PUBLISHED_SCALES_TABLE1[:-1]
    # The paper's claim: largest in-core problem and system size to date.
    assert ours[1] > max(r[1] for r in others)
    assert ours[2] > max(r[2] for r in others)
    write_result(results_dir, "table1_survey", table)
