"""Future-work experiment (Sec. VI): the I/O signature.

"We are continuing to study the I/O signature, that is, the striping
pattern across I/O servers, of this and other algorithms."

For the 1120^3 read at 2K cores, maps every physical access of each
I/O mode onto the 17-SAN x 8-server installation and reports balance:
the reads stripe wide (all 136 servers engaged) and nearly evenly, so
the bottleneck is per-access efficiency, not hot servers — consistent
with the paper finding tuning (access shape), not restriping, to be
the lever.
"""

from benchmarks.conftest import write_result
from repro.analysis.reports import format_table
from repro.analysis.signature import server_load_profile

MODES = ("raw", "netcdf-tuned", "netcdf")
CORES = 2048


def test_future_io_signature(benchmark, results_dir, fm_1120):
    def collect():
        return {m: server_load_profile(fm_1120.io_report(m, CORES).plan) for m in MODES}

    profiles = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["mode", "physical (GB)", "servers used", "imbalance", "eff. parallelism"],
        [
            [
                m,
                profiles[m].total_bytes / 1e9,
                profiles[m].servers_used,
                profiles[m].imbalance,
                profiles[m].effective_parallelism,
            ]
            for m in MODES
        ],
    )
    for m in MODES:
        assert profiles[m].servers_used == 136
        assert profiles[m].imbalance < 1.6
        assert profiles[m].effective_parallelism > 100

    write_result(
        results_dir,
        "future_io_signature",
        f"Future work: I/O signatures across the storage system "
        f"(1120^3, {CORES} cores)\n\n" + table
        + "\n\nper-SAN load, raw mode:\n" + profiles["raw"].render(width=40),
    )
