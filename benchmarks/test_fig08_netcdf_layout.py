"""Fig. 8 — "The organization of variables within the netCDF file."

The record-variable interleaving: five 3D variables stored as 2D
records, record by record — so one variable's bytes recur every
``record_stride`` bytes, at data density 1/5.  Rendered from our own
writer at test scale and verified at paper scale via the header-only
virtual file.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.data.vh1 import VH1_VARIABLES
from repro.formats.netcdf import NetCDFWriter
from repro.utils.units import fmt_bytes


def build_paper_scale_file():
    w = NetCDFWriter(version=2)
    w.create_dimension("z", None)
    w.create_dimension("y", 1120)
    w.create_dimension("x", 1120)
    for name in VH1_VARIABLES:
        w.create_variable(name, np.float32, ("z", "y", "x"))
    return w.write_header_only(numrecs=1120)


def test_fig08_netcdf_layout(benchmark, results_dir):
    big = benchmark.pedantic(build_paper_scale_file, rounds=1, iterations=1)

    # Test-scale file for the visual map.
    small_nc = write_vh1_netcdf(SupernovaModel((4, 6, 6), seed=1))
    layout_map = small_nc.describe_layout(max_records=2)

    slab = 1120 * 1120 * 4
    v = big.variables["pressure"]
    assert big.record_stride == 5 * slab, "five interleaved variables"
    assert v.layout.covering_intervals()[0][1] == slab
    gaps = np.diff([off for off, _l in v.layout.covering_intervals()])
    assert np.all(gaps == big.record_stride), "one slab every record stride"
    # File ~5x one variable: the cost of reading one variable untuned.
    assert big.store.size() / (1120**3 * 4) > 4.9

    report = (
        "Fig. 8: netCDF record-variable organization\n\n"
        "Test-scale file map (4 records, 5 variables):\n"
        + layout_map
        + "\n\nPaper-scale (1120^3) facts:\n"
        f"  record (2D slice) size: {fmt_bytes(slab)}  <- the paper's tuned cb_buffer\n"
        f"  record stride (5 variables): {fmt_bytes(big.record_stride)}\n"
        f"  file size: {fmt_bytes(big.store.size())} (paper: 27 GB)\n"
        f"  single-variable data density in file: {1120**3 * 4 / big.store.size():.3f}"
    )
    write_result(results_dir, "fig08_netcdf_layout", report)
