"""Cross-validation: the analytic composite model vs event-driven runs.

The paper-scale figures come from the analytic model; this bench runs
the *same* direct-send schedules through the discrete-event network
(virtual payloads, real message-by-message timing with endpoint
serialization) at 256-512 ranks and checks the two worlds agree on
magnitudes and on every configuration ordering.  Contention is a
phase-level law calibrated for >> 32K concurrent messages; below the
threshold (always true here) it contributes nothing, so the comparison
isolates the mechanical parts of the model.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.analysis.reports import format_table
from repro.compositing.policy import fixed_policy
from repro.model.composite import CompositeTimeModel, vectorized_schedule_stats
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.vmpi import MPIWorld, VirtualPayload
from repro.compositing.schedule import schedule_from_geometry

GRID = (64, 64, 64)
IMAGE = 256
CONFIGS = ((256, 256), (256, 64), (512, 128))

#: Half-rack scale (the engine fast-path acceptance point): the same
#: geometry the DES-scale perf suite times, with the paper's two
#: compositor policies — m = n (every renderer composites) and the
#: improved limited-m schedule.
GRID_2048 = (128, 128, 128)
IMAGE_2048 = 512
CONFIGS_2048 = ((2048, 2048), (2048, 128))


def des_composite(nprocs: int, schedule) -> float:
    """Run one compositing phase with virtual payloads; simulated secs."""

    def program(ctx):
        reqs = []
        for msg in schedule.outgoing(ctx.rank):
            dest = schedule.compositor_rank(msg.tile)
            if dest == ctx.rank:
                continue
            reqs.append(ctx.isend(VirtualPayload(msg.nbytes), dest, 42))
        if ctx.rank < schedule.num_compositors:
            expected = [m for m in schedule.incoming(ctx.rank) if m.src != ctx.rank]
            for _ in range(len(expected)):
                yield from ctx.recv(tag=42)
        yield from ctx.waitall(reqs)
        return None

    world = MPIWorld.for_cores(nprocs)
    return world.run(program).elapsed_s


def test_model_vs_des_composite(benchmark, results_dir):
    cam = Camera.looking_at_volume(GRID, width=IMAGE, height=IMAGE)
    model = CompositeTimeModel()

    def collect():
        rows = []
        for nprocs, m in CONFIGS:
            dec = BlockDecomposition(GRID, nprocs)
            sched = schedule_from_geometry(dec, cam, m)
            des_s = des_composite(nprocs, sched)
            priced = model.price(vectorized_schedule_stats(dec, cam, m))
            # The model's setup constant covers schedule construction
            # the DES phase does not perform; compare the moving parts.
            model_s = priced.seconds - priced.setup_s
            rows.append((nprocs, m, des_s, model_s, sched.total_messages))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["ranks", "m", "DES (ms)", "model (ms)", "messages"],
        [[n, m, d * 1e3, mod * 1e3, c] for n, m, d, mod, c in rows],
    )

    for nprocs, m, des_s, model_s, _count in rows:
        ratio = des_s / model_s
        # Same magnitude: the DES includes hop latencies and full
        # message interleaving; the phase model bounds the busiest
        # endpoint analytically.  (Strict ordering is not asserted:
        # at these scales the configurations land within a factor of
        # two of each other in both worlds, below the model's
        # resolution — the scale-driven orderings Figs. 3-4 rely on
        # are asserted in tests/model/test_composite_model.py.)
        assert 0.25 < ratio < 6.0, (nprocs, m, ratio)

    # Both worlds agree all configs sit in one tight band here.
    des_vals = np.array([r[2] for r in rows])
    model_vals = np.array([r[3] for r in rows])
    assert des_vals.max() / des_vals.min() < 5
    assert model_vals.max() / model_vals.min() < 5

    _ = fixed_policy  # imported for interactive variations of this bench
    write_result(
        results_dir,
        "model_vs_des",
        "Cross-validation: analytic composite model vs event-driven runs\n\n"
        + table,
    )


def test_model_vs_des_composite_2048(benchmark, results_dir):
    """The same cross-check at 2048 ranks — the scale the engine
    fast path exists for.  Exercises both compositor policies: m = n
    and the improved limited-m schedule."""
    cam = Camera.looking_at_volume(GRID_2048, width=IMAGE_2048, height=IMAGE_2048)
    model = CompositeTimeModel()

    def collect():
        rows = []
        for nprocs, m in CONFIGS_2048:
            dec = BlockDecomposition(GRID_2048, nprocs)
            sched = schedule_from_geometry(dec, cam, m)
            des_s = des_composite(nprocs, sched)
            priced = model.price(vectorized_schedule_stats(dec, cam, m))
            model_s = priced.seconds - priced.setup_s
            rows.append((nprocs, m, des_s, model_s, sched.total_messages))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["ranks", "m", "DES (ms)", "model (ms)", "messages"],
        [[n, m, d * 1e3, mod * 1e3, c] for n, m, d, mod, c in rows],
    )

    for nprocs, m, des_s, model_s, _count in rows:
        ratio = des_s / model_s
        # Same tolerance band as the small-scale check: the DES plays
        # out hop latencies and endpoint interleaving message by
        # message, the model bounds the busiest endpoint analytically.
        assert 0.25 < ratio < 6.0, (nprocs, m, ratio)

    write_result(
        results_dir,
        "model_vs_des_2048",
        "Cross-validation at 2048 ranks: analytic model vs event-driven\n\n"
        + table,
    )
