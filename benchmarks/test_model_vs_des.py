"""Cross-validation: the analytic composite model vs event-driven runs.

The paper-scale figures come from the analytic model; this bench runs
the *same* direct-send schedules through the discrete-event network
(virtual payloads, real message-by-message timing with endpoint
serialization) at 256-512 ranks and checks the two worlds agree on
magnitudes and on every configuration ordering.  Contention is a
phase-level law calibrated for >> 32K concurrent messages, and the
DES transport deliberately does not model it — so every comparison
here is DES vs the model's *mechanical* part (``endpoint_s``; below
the contention threshold that equals ``seconds - setup_s``).  The 32K
test crosses the threshold and shows the split explicitly: endpoint
mechanics agree between the worlds while the contention law alone
carries the Fig. 8 m = n collapse.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.analysis.reports import format_table
from repro.compositing.policy import fixed_policy
from repro.model.composite import CompositeTimeModel, vectorized_schedule_stats
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.vmpi import MPIWorld, VirtualPayload
from repro.compositing.schedule import schedule_from_geometry

GRID = (64, 64, 64)
IMAGE = 256
CONFIGS = ((256, 256), (256, 64), (512, 128))

#: Half-rack scale (the engine fast-path acceptance point): the same
#: geometry the DES-scale perf suite times, with the paper's two
#: compositor policies — m = n (every renderer composites) and the
#: improved limited-m schedule.
GRID_2048 = (128, 128, 128)
IMAGE_2048 = 512
CONFIGS_2048 = ((2048, 2048), (2048, 128))

#: Full machine scale, affordable through the sharded parallel DES
#: backend: the paper's Fig. 8 point (32K ranks) plus the 8192-rank
#: step, each under m = n and the limited-m mitigation.
CONFIGS_32K = ((8192, 8192), (8192, 2048), (32768, 32768), (32768, 2048))


def des_composite(nprocs: int, schedule, parallel=None) -> float:
    """Run one compositing phase with virtual payloads; simulated secs."""

    def program(ctx):
        reqs = []
        for msg in schedule.outgoing(ctx.rank):
            dest = schedule.compositor_rank(msg.tile)
            if dest == ctx.rank:
                continue
            reqs.append(ctx.isend(VirtualPayload(msg.nbytes), dest, 42))
        if ctx.rank < schedule.num_compositors:
            expected = [m for m in schedule.incoming(ctx.rank) if m.src != ctx.rank]
            for _ in range(len(expected)):
                yield from ctx.recv(tag=42)
        yield from ctx.waitall(reqs)
        return None

    world = MPIWorld.for_cores(nprocs)
    return world.run(program, parallel=parallel).elapsed_s


def test_model_vs_des_composite(benchmark, results_dir):
    cam = Camera.looking_at_volume(GRID, width=IMAGE, height=IMAGE)
    model = CompositeTimeModel()

    def collect():
        rows = []
        for nprocs, m in CONFIGS:
            dec = BlockDecomposition(GRID, nprocs)
            sched = schedule_from_geometry(dec, cam, m)
            des_s = des_composite(nprocs, sched)
            priced = model.price(vectorized_schedule_stats(dec, cam, m))
            # The model's setup constant covers schedule construction
            # the DES phase does not perform, and contention is a
            # phase-level law the DES has no counterpart for (zero at
            # this scale anyway); compare the moving parts.
            model_s = priced.endpoint_s
            rows.append((nprocs, m, des_s, model_s, sched.total_messages))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["ranks", "m", "DES (ms)", "model (ms)", "messages"],
        [[n, m, d * 1e3, mod * 1e3, c] for n, m, d, mod, c in rows],
    )

    for nprocs, m, des_s, model_s, _count in rows:
        ratio = des_s / model_s
        # Same magnitude: the DES includes hop latencies and full
        # message interleaving; the phase model bounds the busiest
        # endpoint analytically.  (Strict ordering is not asserted:
        # at these scales the configurations land within a factor of
        # two of each other in both worlds, below the model's
        # resolution — the scale-driven orderings Figs. 3-4 rely on
        # are asserted in tests/model/test_composite_model.py.)
        assert 0.25 < ratio < 6.0, (nprocs, m, ratio)

    # Both worlds agree all configs sit in one tight band here.
    des_vals = np.array([r[2] for r in rows])
    model_vals = np.array([r[3] for r in rows])
    assert des_vals.max() / des_vals.min() < 5
    assert model_vals.max() / model_vals.min() < 5

    _ = fixed_policy  # imported for interactive variations of this bench
    write_result(
        results_dir,
        "model_vs_des",
        "Cross-validation: analytic composite model vs event-driven runs\n\n"
        + table,
    )


def test_model_vs_des_composite_2048(benchmark, results_dir):
    """The same cross-check at 2048 ranks — the scale the engine
    fast path exists for.  Exercises both compositor policies: m = n
    and the improved limited-m schedule."""
    cam = Camera.looking_at_volume(GRID_2048, width=IMAGE_2048, height=IMAGE_2048)
    model = CompositeTimeModel()

    def collect():
        rows = []
        for nprocs, m in CONFIGS_2048:
            dec = BlockDecomposition(GRID_2048, nprocs)
            sched = schedule_from_geometry(dec, cam, m)
            des_s = des_composite(nprocs, sched)
            priced = model.price(vectorized_schedule_stats(dec, cam, m))
            model_s = priced.endpoint_s
            rows.append((nprocs, m, des_s, model_s, sched.total_messages))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["ranks", "m", "DES (ms)", "model (ms)", "messages"],
        [[n, m, d * 1e3, mod * 1e3, c] for n, m, d, mod, c in rows],
    )

    for nprocs, m, des_s, model_s, _count in rows:
        ratio = des_s / model_s
        # Same tolerance band as the small-scale check: the DES plays
        # out hop latencies and endpoint interleaving message by
        # message, the model bounds the busiest endpoint analytically.
        assert 0.25 < ratio < 6.0, (nprocs, m, ratio)

    write_result(
        results_dir,
        "model_vs_des_2048",
        "Cross-validation at 2048 ranks: analytic model vs event-driven\n\n"
        + table,
    )


def test_model_vs_des_composite_32k(benchmark, results_dir):
    """The cross-check at 8192 and 32768 ranks, full fidelity — every
    compositing message a DES event, no analytic shortcut — through
    the sharded conservative-parallel backend (workers=2; the result
    is bitwise independent of the worker count).

    These scales cross the contention threshold, so the comparison
    splits the model: the DES must land in-band against the mechanical
    ``endpoint_s`` part, while the phase-level contention law (which
    the DES transport deliberately does not replay) alone carries the
    Fig. 8 m = n collapse.  Both the DES-mechanical and the full-model
    32K compositor-limiting ratios are recorded for EXPERIMENTS.md."""
    from repro.sim.parallel import ParallelConfig

    cam = Camera.looking_at_volume(GRID_2048, width=IMAGE_2048, height=IMAGE_2048)
    model = CompositeTimeModel()
    parallel = ParallelConfig(workers=2)

    def collect():
        rows = []
        for nprocs, m in CONFIGS_32K:
            dec = BlockDecomposition(GRID_2048, nprocs)
            sched = schedule_from_geometry(dec, cam, m)
            des_s = des_composite(nprocs, sched, parallel=parallel)
            priced = model.price(vectorized_schedule_stats(dec, cam, m))
            rows.append(
                (nprocs, m, des_s, priced.endpoint_s, priced.contention_s,
                 sched.total_messages)
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    des = {(n, m): d for n, m, d, _e, _c, _cnt in rows}
    full = {(n, m): e + c for n, m, _d, e, c, _cnt in rows}
    des_ratio = des[(32768, 32768)] / des[(32768, 2048)]
    model_ratio = full[(32768, 32768)] / full[(32768, 2048)]

    table = format_table(
        ["ranks", "m", "DES (ms)", "endpoint (ms)", "contention (ms)", "messages"],
        [[n, m, d * 1e3, e * 1e3, c * 1e3, cnt] for n, m, d, e, c, cnt in rows],
    )

    for nprocs, m, des_s, endpoint_s, _cont, _count in rows:
        ratio = des_s / endpoint_s
        # The same band as the smaller scales, against the mechanical
        # part only: the DES plays out hop latencies and endpoint
        # interleaving message by message, the model bounds the
        # busiest endpoint analytically.
        assert 0.25 < ratio < 6.0, (nprocs, m, ratio)

    # Fig. 8 direction at 32K: m = n loses to the limited-m
    # mitigation in both worlds.  The DES sees it mechanically (each
    # renderer injects ~65 tiny serialized messages under m = n, even
    # though the model's per-endpoint *bound* is larger for limited-m)
    # and the contention law widens the gap further — the many-small-
    # messages penalty the paper attributes the collapse to.
    assert des_ratio > 1.0
    assert model_ratio > des_ratio
    assert full[(32768, 32768)] > des[(32768, 32768)]

    write_result(
        results_dir,
        "model_vs_des_32k",
        "Cross-validation at 8192/32768 ranks (parallel DES backend)\n\n"
        + table
        + f"\n\n32K compositor-limiting ratio (m=n / m=2048):"
        f" model {model_ratio:.2f}x, DES-mechanical {des_ratio:.2f}x",
    )
