"""Ablation: compositor image regions as 2D tiles vs scanline strips.

Square-ish tiles give the O(m * n^(1/3)) message count the paper cites;
full-width strips make every footprint overlap ~m * height-fraction
strips, inflating message counts and shrinking messages at scale.
"""

from benchmarks.conftest import write_result

from repro.analysis.reports import format_table
from repro.model.composite import CompositeTimeModel, vectorized_schedule_stats
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition

GRID = (1120, 1120, 1120)
IMAGE = 1600


def test_ablation_tile_shape(benchmark, results_dir):
    cam = Camera.looking_at_volume(GRID, width=IMAGE, height=IMAGE)
    model = CompositeTimeModel()

    def collect():
        out = []
        # m kept <= image height so full-width strips are realizable.
        for cores, m in ((4096, 512), (16384, 1024), (32768, 1024)):
            dec = BlockDecomposition(GRID, cores)
            tiles = vectorized_schedule_stats(dec, cam, m, strips=False)
            strips = vectorized_schedule_stats(dec, cam, m, strips=True)
            out.append((cores, m, tiles, strips, model.price(tiles), model.price(strips)))
        return out

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["cores", "m", "tile msgs", "strip msgs", "tile t(s)", "strip t(s)"],
        [
            [c, m, t.total_messages, s.total_messages, pt.seconds, ps.seconds]
            for c, m, t, s, pt, ps in rows
        ],
    )
    for _c, _m, tiles, strips, priced_t, priced_s in rows:
        assert strips.total_messages > 1.5 * tiles.total_messages
        assert strips.mean_message_bytes < tiles.mean_message_bytes
        assert priced_s.seconds >= priced_t.seconds

    write_result(
        results_dir,
        "ablation_tile_shape",
        "Ablation: 2D tiles vs scanline strips for compositor regions\n\n" + table,
    )
