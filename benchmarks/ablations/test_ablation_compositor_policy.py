"""Ablation: the compositor-count schedule.

The paper chose its step policy (m=n below 1K, 1K to 4K, 2K beyond)
"empirically after testing combinations of renderers and compositors"
and notes "finer control over the number of compositors did not improve
the results."  This bench sweeps m at the paper's core counts and
checks the paper's choices sit at (or near) the sweep minimum.
"""

from benchmarks.conftest import write_result

from repro.analysis.reports import format_table
from repro.compositing.policy import PAPER_POLICY, fixed_policy

M_SWEEP = (256, 512, 1024, 2048, 4096, 8192)
CORES = (8192, 16384, 32768)


def test_ablation_compositor_policy(benchmark, results_dir, fm_1120):
    def collect():
        out = {}
        for cores in CORES:
            row = {}
            for m in M_SWEEP:
                if m > cores:
                    continue
                row[m] = fm_1120.composite_stage(cores, fixed_policy(m)).seconds
            row[cores] = fm_1120.composite_stage(cores, fixed_policy(cores)).seconds
            out[cores] = row
        return out

    sweep = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for cores in CORES:
        paper_m = PAPER_POLICY.compositors_for(cores)
        best_m = min(sweep[cores], key=sweep[cores].get)
        rows.append(
            [
                cores,
                paper_m,
                sweep[cores][paper_m],
                best_m,
                sweep[cores][best_m],
                sweep[cores][cores],
            ]
        )
        # The paper's choice is within 2x of the sweep's best, and far
        # better than m = n.
        assert sweep[cores][paper_m] < 2.0 * sweep[cores][best_m]
        assert sweep[cores][paper_m] < 0.5 * sweep[cores][cores]

    table = format_table(
        ["cores", "paper m", "paper t(s)", "best m", "best t(s)", "m=n t(s)"], rows
    )
    # "Finer control ... did not improve the results": the paper's two
    # candidate values (1K and 2K compositors) differ by little at 32K.
    t1k = sweep[32768][1024]
    t2k = sweep[32768][2048]
    assert max(t1k, t2k) < 1.5 * min(t1k, t2k)

    write_result(
        results_dir,
        "ablation_compositor_policy",
        "Ablation: compositor count m vs compositing time (1120^3, 1600^2)\n\n" + table,
    )
