"""Ablation: active-pixel compression of compositing messages.

The paper ships raw bounding-box pieces; production compositors trim
transparent pixels first.  Measured functionally (real pixels, real
byte counts) on a sparse synthetic supernova, then extrapolated to
paper scale: trimming shrinks the original scheme's messages, but
cannot fix its small-message count — compositor limiting still wins.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.analysis.reports import format_table
from repro.compositing.directsend import assemble_final_image, direct_send_compose
from repro.compositing.schedule import schedule_from_geometry
from repro.data.synthetic import supernova_field
from repro.render import Camera, TransferFunction, VolumeBlock
from repro.render.decomposition import BlockDecomposition
from repro.render.raycast import render_block
from repro.vmpi import MPIWorld

GRID = (24, 24, 24)
NPROCS = 8


def test_ablation_compression(benchmark, results_dir):
    # A sparse field (the shock shell) so trimming has something to cut.
    data = supernova_field(GRID, "vx", seed=3)
    cam = Camera.looking_at_volume(GRID, width=96, height=96)
    tf = TransferFunction.supernova(-1, 1)
    dec = BlockDecomposition(GRID, NPROCS)
    sched = schedule_from_geometry(dec, cam, NPROCS)

    def program(ctx, compress):
        b = dec.block(ctx.rank)
        rs, rc, gl = b.ghost_read(GRID, ghost=1)
        sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
        partial = render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, 0.7)
        tile = yield from direct_send_compose(ctx, partial, sched, compress=compress)
        # Note: bytes are measured for the compose phase only; the
        # final gather is display traffic, identical in both variants.
        phase_bytes = ctx.board.network.bytes_sent
        final = yield from assemble_final_image(ctx, tile, sched, root=0)
        return final, phase_bytes

    def collect():
        world = MPIWorld.for_cores(NPROCS)
        plain = world.run(program, False)
        plain_stats = (max(v[1] for v in plain.values), plain.elapsed_s, plain[0][0])
        compressed = world.run(program, True)
        return plain_stats, (
            max(v[1] for v in compressed.values), compressed.elapsed_s, compressed[0][0]
        )

    (p_bytes, p_time, p_img), (c_bytes, c_time, c_img) = benchmark.pedantic(
        collect, rounds=1, iterations=1
    )

    assert np.allclose(p_img, c_img, atol=1e-6), "compression must not change pixels"
    reduction = 1 - c_bytes / p_bytes
    assert reduction > 0.05, "sparse data should trim a meaningful fraction"

    table = format_table(
        ["variant", "compose-phase bytes", "simulated time (ms)"],
        [
            ["raw pieces", p_bytes, p_time * 1e3],
            ["trimmed pieces", c_bytes, c_time * 1e3],
        ],
    )
    write_result(
        results_dir,
        "ablation_compression",
        "Ablation: active-pixel trimming of direct-send messages "
        f"({GRID} supernova, {NPROCS} ranks)\n\n" + table
        + f"\n\nbyte reduction: {100 * reduction:.1f}% with identical pixels",
    )
