"""Ablation: direct-send vs binary-swap compositing.

The paper uses direct-send; binary swap (Ma et al., its ref. [13]) is
the classic alternative.  Binary swap's messages shrink by half each of
its log2(p) synchronized rounds, so at very large p its final rounds
also enter the small-message regime — while improved direct-send keeps
m bounded and messages big.  (The follow-on Radix-k work unifies the
two; this bench shows why neither extreme wins everywhere.)
"""

from benchmarks.conftest import write_result

from repro.analysis.reports import format_table
from repro.compositing.policy import IDENTITY_POLICY, PAPER_POLICY
from repro.model.composite import binary_swap_cost

CORES = (256, 1024, 4096, 16384, 32768)
IMAGE_BYTES = 1600 * 1600 * 16  # premultiplied RGBA float32


def test_ablation_binary_swap(benchmark, results_dir, fm_1120):
    def collect():
        out = []
        for cores in CORES:
            ds_orig = fm_1120.composite_stage(cores, IDENTITY_POLICY)
            ds_impr = fm_1120.composite_stage(cores, PAPER_POLICY)
            bs = binary_swap_cost(cores, IMAGE_BYTES)
            out.append((cores, ds_orig, ds_impr, bs))
        return out

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["cores", "direct-send m=n (s)", "improved m<=2K (s)", "binary swap (s)"],
        [[c, o.seconds, i.seconds, b.seconds] for c, o, i, b in rows],
    )

    by_cores = {c: (o, i, b) for c, o, i, b in rows}
    # At 32K, improved direct-send beats the original scheme decisively.
    o, i, b = by_cores[32768]
    assert i.seconds < o.seconds / 10
    # Binary swap also avoids the original scheme's collapse at 32K
    # (it has no m*n^(1/3) small-message storm)...
    assert b.seconds < o.seconds
    # ...but pays log2(p) synchronized rounds, so improved direct-send
    # stays competitive.
    assert i.seconds < 3 * b.seconds

    write_result(
        results_dir,
        "ablation_binary_swap",
        "Ablation: direct-send vs binary-swap compositing (1120^3, 1600^2)\n\n"
        + table,
    )
