"""Future-work ablation (Sec. VI): the same reads on a Lustre profile.

"The effect of the file system on performance is an active area of
research; we are conducting similar experiments on Lustre."  Same
access plans, different striping and server inventory.
"""

from benchmarks.conftest import write_result

from repro.analysis.reports import format_table
from repro.machine.partition import Partition
from repro.model.io import IOTimeModel
from repro.storage.profiles import LUSTRE_ORNL, PVFS_BGP

CORES = (2048, 8192, 32768)
MODES = ("raw", "netcdf", "netcdf-tuned")


def test_ablation_filesystem(benchmark, results_dir, fm_1120):
    models = {
        "pvfs": IOTimeModel(fm_1120.constants, profile=PVFS_BGP),
        "lustre": IOTimeModel(fm_1120.constants, profile=LUSTRE_ORNL),
    }

    def collect():
        rows = []
        for mode in MODES:
            for cores in CORES:
                report = fm_1120.io_report(mode, cores)
                part = Partition.for_cores(cores)
                t_pvfs = models["pvfs"].price(report, part).seconds
                t_lustre = models["lustre"].price(report, part).seconds
                rows.append([mode, cores, t_pvfs, t_lustre, t_pvfs / t_lustre])
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["mode", "cores", "PVFS/BG-P (s)", "Lustre (s)", "ratio"], rows
    )
    # The access-pattern pathology is file-layout driven, not
    # file-system driven: untuned netCDF stays the slow mode on both.
    for cores in CORES:
        by_mode = {r[0]: r for r in rows if r[1] == cores}
        for fs_col in (2, 3):
            assert by_mode["netcdf"][fs_col] > by_mode["netcdf-tuned"][fs_col]
            assert by_mode["netcdf-tuned"][fs_col] > by_mode["raw"][fs_col]
    # Both systems land within a small factor of each other everywhere.
    assert all(0.4 < r[4] < 2.5 for r in rows)

    write_result(
        results_dir,
        "ablation_filesystem",
        "Future-work ablation: PVFS/BG-P profile vs Lustre profile "
        "(1120^3 reads)\n\n" + table
        + f"\n\nprofiles:\n  {PVFS_BGP}\n  {LUSTRE_ORNL}",
    )
