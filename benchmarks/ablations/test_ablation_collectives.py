"""Ablation: collective algorithm choice on the simulated torus.

The paper's Sec. II-C connects image compositing to the collective-
communication literature.  This bench measures (in simulated time, on
the DES network) the algorithms our vmpi layer implements against naive
linear variants, at functional scale.
"""

import numpy as np

from benchmarks.conftest import write_result

from repro.analysis.reports import format_table
from repro.vmpi import MPIWorld

P = 64
PAYLOAD = 1 << 16  # 64 KiB


def linear_bcast(ctx, data, root=0):
    """Naive broadcast: root sends to everyone directly."""
    if ctx.rank == root:
        for dst in range(ctx.size):
            if dst != root:
                yield from ctx.send(data, dst, 900)
        return data
    return (yield from ctx.recv(source=root, tag=900))


def linear_gather(ctx, value, root=0):
    if ctx.rank != root:
        yield from ctx.send(value, root, 901)
        return None
    out = [None] * ctx.size
    out[root] = value
    for _ in range(ctx.size - 1):
        payload, status = yield from ctx.recv_status(tag=901)
        out[status.source] = payload
    return out


def test_ablation_collectives(benchmark, results_dir):
    world = MPIWorld.for_cores(P)
    data = np.zeros(PAYLOAD // 8)

    def tree_bcast_prog(ctx):
        out = yield from ctx.bcast(data if ctx.rank == 0 else None, root=0)
        return out.shape

    def linear_bcast_prog(ctx):
        out = yield from linear_bcast(ctx, data if ctx.rank == 0 else None, root=0)
        return out.shape

    gather_payload = np.zeros(1024)  # 8 KiB per rank

    def tree_gather_prog(ctx):
        out = yield from ctx.gather(gather_payload, root=0)
        return None if out is None else len(out)

    def linear_gather_prog(ctx):
        out = yield from linear_gather(ctx, gather_payload, root=0)
        return None if out is None else len(out)

    def run_all():
        return {
            "binomial bcast": world.run(tree_bcast_prog).elapsed_s,
            "linear bcast": world.run(linear_bcast_prog).elapsed_s,
            "binomial gather": world.run(tree_gather_prog).elapsed_s,
            "linear gather": world.run(linear_gather_prog).elapsed_s,
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = format_table(
        ["algorithm", "simulated time (ms)"],
        [[name, 1e3 * t] for name, t in times.items()],
    )
    # Tree algorithms beat their linear counterparts: the root's
    # injection port serializes linear variants.
    assert times["binomial bcast"] < times["linear bcast"]
    assert times["binomial gather"] < times["linear gather"]

    write_result(
        results_dir,
        "ablation_collectives",
        f"Ablation: collective algorithms on the simulated torus "
        f"({P} ranks, {PAYLOAD // 1024} KiB broadcast payload)\n\n" + table,
    )
