"""Ablation: collective-buffer size around the netCDF record size.

The paper's tuning sets cb_buffer_size to exactly one record slab
(1120 * 1120 * 4 B).  Sweeping buffer sizes shows why: much smaller
buffers multiply accesses; much larger ones straddle unneeded records
(physical bytes blow up toward whole-file reads).
"""

from benchmarks.conftest import write_result

from repro.analysis.reports import format_table
from repro.pio.hints import IOHints

CORES = 2048


def test_ablation_cb_buffer(benchmark, results_dir, fm_1120):
    record = 1120 * 1120 * 4
    factors = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

    def collect():
        out = []
        for f in factors:
            hints = IOHints(cb_buffer_size=int(record * f), cb_nodes=8)
            from repro.model.pipeline import _build_handle

            handle, _ = _build_handle(1120, "netcdf", 8)
            from repro.pio.reader import plan_read_blocks

            report = plan_read_blocks(handle, nprocs=CORES, hints=hints)
            stage = fm_1120.io_model.price(
                report, __import__("repro.machine.partition", fromlist=["Partition"]).Partition.for_cores(CORES)
            )
            out.append((f, report, stage))
        return out

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["buffer (records)", "physical (GB)", "density", "accesses", "time (s)"],
        [
            [f, rep.physical_bytes / 1e9, rep.density, rep.num_accesses, st.seconds]
            for f, rep, st in rows
        ],
    )

    by_factor = {f: (rep, st) for f, rep, st in rows}
    # The record-sized buffer minimizes read time across the sweep:
    # smaller buffers fragment accesses (server-efficiency loss even
    # though density rises), larger ones straddle unneeded records.
    best_time = min(st.seconds for _f, _rep, st in rows)
    assert by_factor[1.0][1].seconds <= 1.1 * best_time
    # Oversized buffers straddle unneeded records.
    assert by_factor[8.0][0].physical_bytes > 1.8 * by_factor[1.0][0].physical_bytes
    # Undersized buffers multiply accesses.
    assert by_factor[0.25][0].num_accesses > 2 * by_factor[1.0][0].num_accesses

    write_result(
        results_dir,
        "ablation_cb_buffer",
        "Ablation: collective buffer size vs netCDF read cost "
        f"(1120^3, {CORES} cores; 1.0 = one record slab = the paper's tuning)\n\n"
        + table,
    )
