"""Future-work ablation: radix-k — where this paper's insight led.

The paper's compositor limiting tames direct-send's small-message storm
by capping the receiver count; the authors' follow-on Radix-k work
generalizes the other classic (binary swap) so the radix tunes message
size against round count.  This bench prices radix-k across k at paper
scale and shows the same sweet spot logic: extremes lose, moderate
radices (and the paper's limited direct-send) win.
"""


from benchmarks.conftest import write_result
from repro.analysis.reports import format_table
from repro.compositing.policy import IDENTITY_POLICY, PAPER_POLICY
from repro.compositing.radixk import default_radices
from repro.model.composite import radix_k_cost

IMAGE_BYTES = 1600 * 1600 * 16
CORES = 32768  # block grid 32 x 32 x 32


def test_ablation_radixk(benchmark, results_dir, fm_1120):
    def collect():
        out = {}
        for k in (2, 4, 8, 32):
            radices = []
            for _axis in range(3):  # 32 blocks per axis
                radices += default_radices(32, k)
            out[f"radix-{k}"] = radix_k_cost(radices, IMAGE_BYTES)
        out["direct-send m=n"] = fm_1120.composite_stage(CORES, IDENTITY_POLICY)
        out["direct-send m=2K"] = fm_1120.composite_stage(CORES, PAPER_POLICY)
        return out

    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["algorithm", "time (s)", "messages", "mean msg (B)"],
        [
            [name, r.seconds, r.num_messages, int(r.mean_message_bytes)]
            for name, r in results.items()
        ],
    )

    # Every radix-k variant beats the original direct-send collapse.
    for k in (2, 4, 8, 32):
        assert results[f"radix-{k}"].seconds < results["direct-send m=n"].seconds
    # Bigger k -> fewer rounds but more, smaller messages per round.
    assert results["radix-32"].num_messages > results["radix-2"].num_messages
    assert results["radix-32"].mean_message_bytes < results["radix-2"].mean_message_bytes
    # The paper's limited direct-send stays competitive with the best k.
    best_k = min(results[f"radix-{k}"].seconds for k in (2, 4, 8, 32))
    assert results["direct-send m=2K"].seconds < 4 * best_k

    write_result(
        results_dir,
        "ablation_radixk",
        f"Future-work ablation: radix-k vs direct-send at {CORES} cores "
        "(1120^3, 1600^2)\n\n" + table,
    )
