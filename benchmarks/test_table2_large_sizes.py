"""Table II — "Volume rendering performance at large sizes."

2240^3 (42 GB steps, 2048^2 images) and 4480^3 (335 GB, 4096^2) at 8K,
16K, and 32K cores.  Paper values for reference:

    grid    procs  total(s)  %I/O  %comp  read B/W
    2240^3   8K     51.35    96.1   1.0   0.87 GB/s
             16K    43.11    97.4   1.0   1.02 GB/s
             32K    35.54    95.8   2.7   1.26 GB/s
    4480^3   8K    316.41    96.1   0.5   1.13 GB/s
             16K   272.63    96.8   1.5   1.30 GB/s
             32K   220.79    95.6   2.6   1.63 GB/s
"""

from benchmarks.conftest import write_result
from repro.analysis.reports import table2_rows

CORES = (8192, 16384, 32768)

PAPER = {
    ("2240", 8192): (51.35, 96.1, 0.87e9),
    ("2240", 16384): (43.11, 97.4, 1.02e9),
    ("2240", 32768): (35.54, 95.8, 1.26e9),
    ("4480", 8192): (316.41, 96.1, 1.13e9),
    ("4480", 16384): (272.63, 96.8, 1.30e9),
    ("4480", 32768): (220.79, 95.6, 1.63e9),
}


def test_table2_large_sizes(benchmark, results_dir, fm_2240, fm_4480):
    def collect():
        out = []
        for name, fm in (("2240", fm_2240), ("4480", fm_4480)):
            for cores in CORES:
                out.append((name, cores, fm.estimate(cores)))
        return out

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    for name, cores, est in rows:
        paper_total, paper_pct_io, paper_bw = PAPER[(name, cores)]
        # Totals within 2x of the paper's testbed; shapes tighter.
        assert 0.5 < est.total_s / paper_total < 2.0, (name, cores, est.total_s)
        assert est.pct_io > 88, "I/O must dominate (paper: ~96%)"
        assert est.pct_composite < 5
        assert 0.6 < est.read_bw_Bps / paper_bw < 1.8, (name, cores, est.read_bw_Bps)

    # Within each dataset: total falls and bandwidth rises with cores.
    for name in ("2240", "4480"):
        ests = [e for n, _c, e in rows if n == name]
        totals = [e.total_s for e in ests]
        bws = [e.read_bw_Bps for e in ests]
        assert totals == sorted(totals, reverse=True)
        assert bws == sorted(bws)

    table = table2_rows([e for _n, _c, e in rows])
    comparison = "\n".join(
        f"  {name}^3 @{cores:>5}: total {est.total_s:7.1f}s (paper {PAPER[(name, cores)][0]:7.2f}s), "
        f"read {est.read_bw_Bps / 1e9:.2f} GB/s (paper {PAPER[(name, cores)][2] / 1e9:.2f})"
        for name, cores, est in rows
    )
    write_result(
        results_dir,
        "table2_large_sizes",
        "Table II: volume rendering performance at large sizes\n\n"
        + table + "\n\npaper-vs-model:\n" + comparison,
    )
