"""Legacy shim so editable installs work offline (no `wheel` package).

`pip install -e .` needs the `wheel` distribution to build a PEP 660
editable wheel; on machines without it, `python setup.py develop`
installs the same thing through the legacy path.
"""
from setuptools import setup

setup()
