"""Event-driven transport semantics."""

import pytest

from repro.machine.mapping import RankMapping
from repro.machine.partition import Partition
from repro.network.costs import LinkCostModel
from repro.network.desnet import DESNetwork
from repro.network.topology import TorusTopology
from repro.sim.engine import Engine
from repro.utils.errors import CommunicationError


def make_net(nodes=16, ppn=4, order="XYZT"):
    part = Partition(nodes, processes_per_node=ppn)
    eng = Engine()
    mapping = RankMapping(part, order)
    topo = TorusTopology(part.shape, torus=part.is_torus)
    return eng, DESNetwork(eng, topo, mapping)


class TestTransfer:
    def test_delivery_happens_later(self):
        eng, net = make_net()
        fut = net.transfer(0, 17, 1000)
        assert not fut.done
        eng.run()
        assert fut.done
        assert eng.now > 0

    def test_same_node_is_fast(self):
        eng, net = make_net(order="TXYZ")  # ranks 0..3 share node 0
        net.transfer(0, 1, 1 << 20)
        t_local = _drain(eng)
        eng2, net2 = make_net(order="TXYZ")
        net2.transfer(0, 4 * 15, 1 << 20)  # far node
        t_remote = _drain(eng2)
        assert t_local < t_remote

    def test_larger_messages_take_longer(self):
        eng, net = make_net()
        net.transfer(0, 40, 100)
        t_small = _drain(eng)
        eng2, net2 = make_net()
        net2.transfer(0, 40, 10 << 20)
        t_big = _drain(eng2)
        assert t_big > t_small

    def test_injection_serializes(self):
        """Two big sends from one node take about twice one send."""
        eng, net = make_net()
        net.transfer(0, 40, 4 << 20)
        net.transfer(0, 44, 4 << 20)
        t_two = _drain(eng)
        eng2, net2 = make_net()
        net2.transfer(0, 44, 4 << 20)
        t_one = _drain(eng2)
        assert t_two > 1.8 * t_one

    def test_different_senders_overlap(self):
        eng, net = make_net()
        net.transfer(0, 40, 4 << 20)
        net.transfer(7, 47, 4 << 20)
        t_par = _drain(eng)
        eng2, net2 = make_net()
        net2.transfer(0, 40, 4 << 20)
        t_one = _drain(eng2)
        assert t_par < 1.5 * t_one

    def test_stats_accumulate(self):
        eng, net = make_net()
        net.transfer(0, 1, 100)
        net.transfer(1, 2, 200)
        eng.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 300
        net.reset_stats()
        assert net.messages_sent == 0

    def test_negative_size_rejected(self):
        _eng, net = make_net()
        with pytest.raises(CommunicationError):
            net.transfer(0, 1, -5)

    def test_more_hops_more_latency(self):
        link = LinkCostModel(sw_overhead_s=0.0)
        part = Partition(64, processes_per_node=1)
        mapping = RankMapping(part, "XYZT")
        topo = TorusTopology(part.shape, torus=part.is_torus)
        times = []
        for dst in (1, 2):  # 1 hop vs 2 hops along x
            eng = Engine()
            net = DESNetwork(eng, topo, mapping, link)
            net.transfer(0, dst, 0)
            times.append(_drain(eng))
        assert times[1] == pytest.approx(times[0] + link.hop_latency_s)


def _drain(eng: Engine) -> float:
    eng.run()
    return eng.now
