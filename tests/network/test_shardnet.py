"""ShardNetwork timing laws and the inter-shard mailbox codec.

The parallel backend's transport must price intra-shard messages
exactly like the monolithic :class:`DESNetwork` (same injection /
ejection serialization), keep every cross-shard ``ready`` at least one
lookahead ahead of the send (the safe-window invariant), and replay
the destination's ejection chain deterministically.  The codec tests
pin the pickle-free record encoding round trip for every payload kind.
"""

import numpy as np
import pytest

from repro.machine.mapping import RankMapping
from repro.machine.partition import Partition
from repro.network.desnet import DESNetwork
from repro.network.shardnet import ShardNetwork
from repro.network.topology import TorusTopology
from repro.sim.engine import Engine
from repro.sim import mailbox
from repro.vmpi.payload import VirtualPayload


def _machine(cores=64):
    part = Partition.for_cores(cores, 4)
    mapping = RankMapping(part, "XYZT")
    topo = TorusTopology(part.shape, torus=part.is_torus)
    return part, mapping, topo


def _single_shard_net(mapping, topo):
    eng = Engine()
    node_shard = np.zeros(topo.num_nodes, dtype=np.int64)
    return ShardNetwork(
        eng, topo, mapping, node_shard=node_shard, shard_id=0
    )


class TestIntraShardTiming:
    def test_matches_monolithic_network(self):
        """One shard owning every node prices sends exactly like the
        monolithic DESNetwork: same injection and ejection timelines."""
        part, mapping, topo = _machine()
        shard = _single_shard_net(mapping, topo)
        mono = DESNetwork(Engine(), topo, mapping)

        rng = np.random.default_rng(42)
        for _ in range(200):
            src = int(rng.integers(0, part.nprocs))
            dst = int(rng.integers(0, part.nprocs))
            if src == dst:
                continue
            nbytes = int(rng.integers(0, 1 << 16))
            local, _done, deliver, _wire = shard.send(src, dst, nbytes)
            assert local
            mono.transfer(src, dst, nbytes)
        np.testing.assert_array_equal(shard._inject_free, mono._inject_free)
        np.testing.assert_array_equal(shard._eject_free, mono._eject_free)
        assert shard.messages_sent == mono.messages_sent
        assert shard.bytes_sent == mono.bytes_sent

    def test_same_node_delivery(self):
        part, mapping, topo = _machine()
        shard = _single_shard_net(mapping, topo)
        mate = next(
            r for r in range(1, part.nprocs)
            if int(mapping.node_of(r)) == int(mapping.node_of(0))
        )
        local, done, deliver, wire = shard.send(0, mate, 4096)
        assert local
        assert done == shard.link.sw_overhead_s
        assert deliver == done + shard.recv_overhead_s
        assert wire == 0.0


class TestCrossShardTiming:
    def _two_shards(self, cores=64):
        part, mapping, topo = _machine(cores)
        node_shard = np.zeros(topo.num_nodes, dtype=np.int64)
        node_shard[topo.num_nodes // 2:] = 1
        nets = [
            ShardNetwork(Engine(), topo, mapping, node_shard=node_shard, shard_id=s)
            for s in (0, 1)
        ]
        return part, mapping, topo, node_shard, nets

    def test_ready_respects_lookahead(self):
        """Every cross-shard ready is >= send time + lookahead (up to
        float rounding) — the invariant the safe windows rely on."""
        part, mapping, topo, node_shard, (src_net, _dst) = self._two_shards()
        lookahead = src_net.link.sw_overhead_s + src_net.link.hop_latency_s
        remote_ranks = [
            r for r in range(part.nprocs)
            if node_shard[int(mapping.node_of(r))] == 1
        ]
        rng = np.random.default_rng(7)
        for _ in range(100):
            dst = int(rng.choice(remote_ranks))
            nbytes = int(rng.integers(0, 1 << 14))
            local, done, ready, wire = src_net.send(0, dst, nbytes)
            assert not local
            # One ulp of slack: ready is computed as arrive - wire.
            assert ready >= np.nextafter(lookahead, 0.0)
            assert done <= ready + wire

    def test_commit_replays_ejection_chain(self):
        """Two records into one destination node serialize on the
        ejection port exactly like the monolithic law."""
        part, mapping, topo, node_shard, (_src, dst_net) = self._two_shards()
        dst_rank = next(
            r for r in range(part.nprocs)
            if node_shard[int(mapping.node_of(r))] == 1
        )
        delivered = []
        dst_net.deliver_remote = (
            lambda dr, sr, tag, nbytes, payload:
            delivered.append((dst_net.engine.now, dr, sr, tag))
        )
        wire = 1e-6
        ready = 5e-5
        dst_net.commit_remote(dst_rank, 0, 1, ready, wire, 512, None)
        dst_net.commit_remote(dst_rank, 1, 1, ready, wire, 512, None)
        dst_net.engine.run()
        eject_busy = dst_net.recv_overhead_s + wire
        assert delivered[0][0] == ready + eject_busy
        assert delivered[1][0] == ready + 2 * eject_busy
        assert [d[2] for d in delivered] == [0, 1]

    def test_commit_clamps_stale_ready(self):
        """A ready an ulp behind the shard clock (float rounding of
        arrive - wire) is clamped, not an error."""
        part, mapping, topo, node_shard, (_src, dst_net) = self._two_shards()
        dst_rank = next(
            r for r in range(part.nprocs)
            if node_shard[int(mapping.node_of(r))] == 1
        )
        dst_net.engine.schedule_at(1e-4, lambda: None)
        dst_net.engine.run()  # the event ratchets the clock to 1e-4
        delivered = []
        dst_net.deliver_remote = (
            lambda dr, sr, tag, nbytes, payload:
            delivered.append(dst_net.engine.now)
        )
        stale = np.nextafter(1e-4, 0.0)
        dst_net.commit_remote(dst_rank, 0, 1, stale, 0.0, 0, None)
        dst_net.engine.run()
        assert delivered == [1e-4 + dst_net.recv_overhead_s]


class TestMailboxCodec:
    @pytest.mark.parametrize(
        "payload",
        [
            None,
            b"raw bytes",
            b"",
            VirtualPayload(123456),
            VirtualPayload(64, label="strip"),
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.array(3.5),
            np.zeros(0, dtype=np.int16),
            {"fallback": [1, 2, (3, 4)]},
            ("tuple", 1),
        ],
    )
    def test_payload_roundtrip(self, payload):
        kind, blob = mailbox.encode_payload(payload)
        out = mailbox.decode_payload(kind, blob)
        if isinstance(payload, np.ndarray):
            assert out.dtype == payload.dtype
            np.testing.assert_array_equal(out, payload)
        else:
            assert out == payload
            assert type(out) is type(payload)

    def test_partial_image_roundtrip(self):
        from repro.render.image import PartialImage

        rgba = np.linspace(0, 1, 2 * 3 * 4, dtype=np.float32).reshape(3, 2, 4)
        img = PartialImage((5, 7, 2, 3), rgba, depth=2.25, samples=17)
        kind, blob = mailbox.encode_payload(img)
        assert kind == mailbox.K_PARTIAL
        out = mailbox.decode_payload(kind, blob)
        assert out.rect == img.rect
        assert out.depth == img.depth
        assert out.samples == img.samples
        np.testing.assert_array_equal(out.rgba, img.rgba)

    def test_ndarray_does_not_alias_source(self):
        a = np.arange(8)
        kind, blob = mailbox.encode_payload(a)
        out = mailbox.decode_payload(kind, blob)
        a[:] = -1
        np.testing.assert_array_equal(out, np.arange(8))
        assert out.flags.writeable

    def test_virtual_payload_avoids_pickle(self):
        kind, _blob = mailbox.encode_payload(VirtualPayload(1 << 20))
        assert kind == mailbox.K_VIRTUAL

    def test_records_roundtrip(self):
        recs = []
        for i, payload in enumerate(
            [None, VirtualPayload(4096), np.arange(3), b"x" * 100]
        ):
            kind, blob = mailbox.encode_payload(payload)
            recs.append(
                (i % 2, 10 + i, 20 + i, i, 7, 1.5e-5 * (i + 1), 2.5e-7 * i,
                 4096 + i, kind, blob)
            )
        out = mailbox.unpack_records(mailbox.pack_records(recs))
        assert out == recs

    def test_records_empty(self):
        assert mailbox.unpack_records(mailbox.pack_records([])) == []
