"""Bulk endpoint serialization: ``transfer_many`` vs the scalar path.

The bulk path exists purely for wall-clock speed at thousands of
ranks; its contract is that it is *bitwise* indistinguishable from
issuing the same requests one at a time — delivered times, byte and
message counters, port free times, and trace spans all identical.
"""

import numpy as np
import pytest

from repro.machine.mapping import RankMapping
from repro.machine.partition import Partition
from repro.network.costs import LinkCostModel
from repro.network.desnet import DESNetwork
from repro.network.topology import TorusTopology
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine
from repro.utils.errors import CommunicationError, ConfigError


def make_net(nodes=32, ppn=2, order="XYZT", tracer=None):
    part = Partition(nodes, processes_per_node=ppn, shape=(4, 4, 2))
    eng = Engine()
    mapping = RankMapping(part, order)
    topo = TorusTopology(part.shape, torus=part.is_torus)
    return eng, DESNetwork(eng, topo, mapping, tracer=tracer)


#: A deliberately awkward fan-out from rank 0: a repeated destination
#: node (ejector chaining), a zero-byte message, and a same-node
#: destination (under TXYZ order with ppn=2, rank 1 shares node 0).
REQUESTS = [(9, 4096), (9, 8192), (17, 0), (33, 65536), (1, 1024), (50, 300)]


def drain_times(eng, futs):
    times = {}

    def stamp(k):
        return lambda _v: times.__setitem__(k, eng.now)

    for k, f in enumerate(futs):
        f.add_done_callback(stamp(k))
    eng.run()
    return [times[k] for k in range(len(futs))]


class TestBulkParity:
    def test_bitwise_identical_to_scalar_path(self):
        tr_a = Tracer()
        eng_a, net_a = make_net(order="TXYZ", tracer=tr_a)
        futs_a = [net_a.transfer(0, d, b) for d, b in REQUESTS]
        times_a = drain_times(eng_a, futs_a)

        tr_b = Tracer()
        eng_b, net_b = make_net(order="TXYZ", tracer=tr_b)
        futs_b = net_b.transfer_many(0, REQUESTS)
        times_b = drain_times(eng_b, futs_b)

        assert times_a == times_b  # == on floats: bitwise, not approx
        assert net_a.messages_sent == net_b.messages_sent == len(REQUESTS)
        assert net_a.bytes_sent == net_b.bytes_sent == sum(b for _d, b in REQUESTS)
        assert np.array_equal(net_a._inject_free, net_b._inject_free)
        assert np.array_equal(net_a._eject_free, net_b._eject_free)
        assert tr_a.counters == tr_b.counters
        assert tr_a.link_bytes == tr_b.link_bytes
        spans_a = [(s.rank, s.name, s.cat, s.t0, s.t1, s.args) for s in tr_a.spans]
        spans_b = [(s.rank, s.name, s.cat, s.t0, s.t1, s.args) for s in tr_b.spans]
        assert spans_a == spans_b

    def test_single_request_delegates_to_scalar(self):
        eng, net = make_net()
        (fut,) = net.transfer_many(0, [(9, 4096)])
        eng2, net2 = make_net()
        fut2 = net2.transfer(0, 9, 4096)
        assert drain_times(eng, [fut]) == drain_times(eng2, [fut2])

    def test_empty_batch(self):
        eng, net = make_net()
        assert net.transfer_many(0, []) == []
        assert net.messages_sent == 0

    def test_negative_size_rejected(self):
        _eng, net = make_net()
        with pytest.raises(CommunicationError):
            net.transfer_many(0, [(9, 100), (10, -1)])


class TestEndpointSerialization:
    def test_injector_serializes_in_request_order(self):
        """Equal-size messages from one node to one far node deliver
        strictly later, request by request, spaced at least a wire
        time apart (the injector admits one message at a time)."""
        eng, net = make_net()
        nbytes = 1 << 16
        futs = net.transfer_many(0, [(40, nbytes)] * 4)
        times = drain_times(eng, futs)
        wire = nbytes / float(net.link.effective_bandwidth(float(nbytes)))
        for earlier, later in zip(times, times[1:]):
            assert later > earlier
            assert later - earlier >= wire * 0.999

    def test_same_node_skips_wire_and_ports(self):
        """A same-node message pays software overhead only and leaves
        both port timelines untouched."""
        eng, net = make_net(order="TXYZ")  # ranks 0 and 1 share node 0
        assert int(net.mapping.node_of(0)) == int(net.mapping.node_of(1))
        futs = net.transfer_many(0, [(1, 1 << 20), (1, 64)])
        times = drain_times(eng, futs)
        expected = net.link.sw_overhead_s + net.recv_overhead_s
        assert times == [expected, expected]  # size-independent, no wire
        assert not net._inject_free.any()
        assert not net._eject_free.any()


class TestHopRowCache:
    def test_matches_hop_count(self):
        topo = TorusTopology((4, 4, 2), torus=True)
        row = topo.hop_row(3)
        dsts = np.arange(topo.num_nodes, dtype=np.int64)
        expected = topo.hop_count(np.int64(3), dsts)
        assert np.array_equal(row, expected)

    def test_cached_and_read_only(self):
        topo = TorusTopology((4, 4, 2), torus=True)
        row = topo.hop_row(5)
        assert topo.hop_row(5) is row  # second call hits the cache
        with pytest.raises(ValueError):
            row[0] = 99

    def test_out_of_range_rejected(self):
        topo = TorusTopology((4, 4, 2), torus=True)
        with pytest.raises(ConfigError):
            topo.hop_row(topo.num_nodes)
        with pytest.raises(ConfigError):
            topo.hop_row(-1)
