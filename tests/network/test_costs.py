"""Cost-model laws: small-message falloff and the contention law."""

import numpy as np
import pytest

from repro.network.costs import (
    ContentionLaw,
    LinkCostModel,
    NetworkCostModel,
    TreeCostModel,
)
from repro.network.topology import TorusTopology


class TestLinkCostModel:
    def test_eta_monotone_in_size(self):
        m = LinkCostModel()
        sizes = np.array([64, 256, 1024, 65536, 1 << 20])
        eta = m.eta(sizes)
        assert np.all(np.diff(eta) > 0)
        assert np.all((eta > 0) & (eta < 1))

    def test_small_messages_fall_off_steeply(self):
        # Kumar & Heidelberger: below 256 bytes bandwidth collapses.
        m = LinkCostModel()
        assert m.effective_bandwidth(256) < 0.15 * m.bandwidth_Bps
        assert m.effective_bandwidth(1 << 20) > 0.95 * m.bandwidth_Bps

    def test_message_time_includes_latency_and_overhead(self):
        m = LinkCostModel()
        t = m.message_time(0, hops=10)
        assert t == pytest.approx(m.sw_overhead_s + 10 * m.hop_latency_s)

    def test_message_time_grows_with_size(self):
        m = LinkCostModel()
        assert m.message_time(1 << 20) > m.message_time(1 << 10)

    def test_serialized_time_sums(self):
        m = LinkCostModel()
        one = m.serialized_time(np.array([1000]))
        many = m.serialized_time(np.array([1000] * 10))
        assert many == pytest.approx(10 * one)

    def test_serialized_time_empty(self):
        assert LinkCostModel().serialized_time(np.array([])) == 0.0


class TestContentionLaw:
    def test_below_threshold_no_delay(self):
        law = ContentionLaw(m_critical=1000)
        assert law.phase_delay(np.full(10, 100)) == 0.0

    def test_above_threshold_sqrt_growth(self):
        law = ContentionLaw(delta_s=1e-3, m_critical=0, s_small_bytes=1e12)
        d1 = law.phase_delay(np.full(10_000, 1))
        d4 = law.phase_delay(np.full(40_000, 1))
        assert d4 == pytest.approx(2 * d1, rel=1e-6)

    def test_large_messages_barely_count(self):
        law = ContentionLaw(m_critical=0, delta_s=1e-3)
        small = law.phase_delay(np.full(1000, 64))
        large = law.phase_delay(np.full(1000, 1 << 20))
        assert small > 20 * large

    def test_smallness_bounds(self):
        law = ContentionLaw()
        assert 0 < law.smallness(1 << 30) < law.smallness(1) <= 1.0


class TestNetworkCostModel:
    def test_empty_phase_is_free(self):
        m = NetworkCostModel(TorusTopology((2, 2, 2)))
        cost = m.phase_time(np.array([]), np.array([]), np.array([]))
        assert cost.total_s == 0.0

    def test_phase_cost_components(self):
        topo = TorusTopology((4, 4, 4))
        m = NetworkCostModel(topo)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, 100)
        dst = rng.integers(0, 64, 100)
        sizes = np.full(100, 10_000)
        cost = m.phase_time(src, dst, sizes)
        assert cost.total_s >= max(cost.link_s, cost.send_s, cost.recv_s)
        assert cost.num_messages == 100

    def test_contention_can_be_disabled(self):
        topo = TorusTopology((4, 4, 4))
        m = NetworkCostModel(topo)
        src = np.zeros(100_000, dtype=np.int64)
        dst = np.ones(100_000, dtype=np.int64)
        sizes = np.full(100_000, 64)
        with_c = m.phase_time(src, dst, sizes, with_contention=True)
        without = m.phase_time(src, dst, sizes, with_contention=False)
        assert with_c.total_s > without.total_s
        assert without.contention_s == 0.0

    def test_hot_spot_receiver_dominates(self):
        """Many senders to one node: receive serialization sets the time."""
        topo = TorusTopology((4, 4, 4))
        m = NetworkCostModel(topo)
        src = np.arange(1, 33)
        dst = np.zeros(32, dtype=np.int64)
        cost = m.phase_time(src, dst, np.full(32, 50_000), with_contention=False)
        assert cost.recv_s >= cost.send_s


class TestTreeCostModel:
    def test_collective_time_scales_log(self):
        m = TreeCostModel()
        t1k = m.collective_time(1024, 1024)
        t4k = m.collective_time(1024, 4096)
        assert t4k > t1k
        assert t4k - t1k == pytest.approx(2 * m.hop_latency_s)
