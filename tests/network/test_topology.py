"""Torus topology and routing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import TorusTopology, TreeNetwork
from repro.utils.errors import ConfigError


@pytest.fixture
def torus():
    return TorusTopology((4, 4, 4), torus=True)


@pytest.fixture
def mesh():
    return TorusTopology((4, 4, 4), torus=False)


class TestCoordinates:
    def test_index_coord_roundtrip(self, torus):
        idx = np.arange(torus.num_nodes)
        back = torus.node_index(torus.node_coords(idx))
        assert np.array_equal(back, idx)

    def test_out_of_range_rejected(self, torus):
        with pytest.raises(ConfigError):
            torus.node_coords(64)
        with pytest.raises(ConfigError):
            torus.node_index(np.array([4, 0, 0]))

    def test_link_ids_unique(self, torus):
        ids = set()
        for node in range(torus.num_nodes):
            for dim in range(3):
                for pos in (0, 1):
                    ids.add(int(torus.link_id(node, dim, pos)))
        assert len(ids) == torus.num_links


class TestDistances:
    def test_self_distance_zero(self, torus):
        assert torus.hop_count(5, 5) == 0

    def test_neighbour_distance_one(self, torus):
        a = torus.node_index(np.array([0, 0, 0]))
        b = torus.node_index(np.array([1, 0, 0]))
        assert torus.hop_count(int(a), int(b)) == 1

    def test_wraparound_shortens_torus_paths(self, torus, mesh):
        a = int(torus.node_index(np.array([0, 0, 0])))
        b = int(torus.node_index(np.array([3, 0, 0])))
        assert torus.hop_count(a, b) == 1  # wraps
        assert mesh.hop_count(a, b) == 3  # no wrap

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    def test_hop_count_symmetric_on_torus(self, a, b):
        t = TorusTopology((4, 4, 4), torus=True)
        assert int(t.hop_count(a, b)) == int(t.hop_count(b, a))

    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63))
    def test_route_length_equals_hop_count(self, a, b):
        t = TorusTopology((4, 4, 4), torus=True)
        assert len(t.route(a, b)) == int(t.hop_count(a, b))

    def test_max_hops_bounded(self, torus):
        # On a 4^3 torus, the farthest node is 2+2+2 hops away.
        hops = torus.hop_count(np.zeros(64, dtype=int), np.arange(64))
        assert hops.max() == 6


class TestLinkLoads:
    def test_single_message_load(self, torus):
        a = int(torus.node_index(np.array([0, 0, 0])))
        b = int(torus.node_index(np.array([2, 1, 0])))
        loads = torus.link_loads(np.array([a]), np.array([b]), np.array([1000]))
        hops = int(torus.hop_count(a, b))
        assert loads.total_bytes == 1000 * hops
        assert loads.msgs_per_link.sum() == hops

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=1, max_value=10_000),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_load_conservation(self, msgs):
        """Total byte-hops equal the sum over messages of bytes * hops."""
        t = TorusTopology((4, 4, 4), torus=True)
        src = np.array([m[0] for m in msgs])
        dst = np.array([m[1] for m in msgs])
        size = np.array([m[2] for m in msgs])
        loads = t.link_loads(src, dst, size)
        expected = int(np.sum(size * t.hop_count(src, dst)))
        assert loads.total_bytes == expected

    def test_loads_match_scalar_routes(self, torus):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, size=30)
        dst = rng.integers(0, 64, size=30)
        size = rng.integers(1, 500, size=30)
        loads = torus.link_loads(src, dst, size)
        expected_bytes = np.zeros(torus.num_links, dtype=np.int64)
        expected_msgs = np.zeros(torus.num_links, dtype=np.int64)
        for s, d, n in zip(src, dst, size):
            for link in torus.route(int(s), int(d)):
                expected_bytes[link] += n
                expected_msgs[link] += 1
        assert np.array_equal(loads.bytes_per_link, expected_bytes)
        assert np.array_equal(loads.msgs_per_link, expected_msgs)

    def test_mesh_never_uses_wrap_links(self, mesh):
        # On a mesh, a route from x=3 to x=0 must go through x=2, x=1.
        a = int(mesh.node_index(np.array([3, 0, 0])))
        b = int(mesh.node_index(np.array([0, 0, 0])))
        assert int(mesh.hop_count(a, b)) == 3

    def test_chunked_accumulation_matches(self, torus):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 64, size=200)
        dst = rng.integers(0, 64, size=200)
        size = rng.integers(1, 100, size=200)
        a = torus.link_loads(src, dst, size, chunk=7)
        b = torus.link_loads(src, dst, size, chunk=10_000)
        assert np.array_equal(a.bytes_per_link, b.bytes_per_link)

    def test_bisection_links(self):
        assert TorusTopology((4, 4, 4), torus=True).bisection_links() == 2 * 4 * 4 * 2
        assert TorusTopology((4, 4, 4), torus=False).bisection_links() == 2 * 4 * 4


class TestTreeNetwork:
    def test_depth_log2(self):
        assert TreeNetwork(1024).depth == 10

    def test_single_node(self):
        assert TreeNetwork(1).depth == 1

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            TreeNetwork(0)
