"""Dataset handles and collective block reads across all formats."""

import numpy as np
import pytest

from repro.data.synthetic import SupernovaModel
from repro.data.vh1 import extract_variable_raw, write_vh1_h5lite, write_vh1_netcdf
from repro.pio.hints import IOHints
from repro.pio.reader import (
    H5LiteHandle,
    NetCDFHandle,
    RawHandle,
    collective_read_blocks,
    plan_read_blocks,
)
from repro.render.decomposition import BlockDecomposition
from repro.storage.accesslog import AccessLog
from repro.utils.errors import FormatError


@pytest.fixture(scope="module")
def model():
    return SupernovaModel((12, 12, 12), seed=5)


def handle_for(fmt: str, model):
    if fmt == "raw":
        return RawHandle(extract_variable_raw(model, "vx")), model.field("vx")
    if fmt == "netcdf":
        return NetCDFHandle(write_vh1_netcdf(model), "vx"), model.field("vx")
    if fmt == "h5lite":
        return H5LiteHandle(write_vh1_h5lite(model), "vx"), model.field("vx")
    raise ValueError(fmt)


@pytest.mark.parametrize("fmt", ("raw", "netcdf", "h5lite"))
class TestCollectiveBlockRead:
    def test_every_rank_gets_its_block(self, fmt, model):
        handle, truth = handle_for(fmt, model)
        dec = BlockDecomposition((12, 12, 12), 8)
        blocks = [(b.start, b.count) for b in dec.blocks()]
        arrays, report = collective_read_blocks(
            handle, blocks, IOHints(cb_buffer_size=4096, cb_nodes=2)
        )
        for (start, count), arr in zip(blocks, arrays):
            sl = tuple(slice(s, s + c) for s, c in zip(start, count))
            assert np.array_equal(arr, truth[sl])
        assert report.requested_bytes == truth.nbytes
        assert report.nprocs == 8

    def test_ghost_blocks_overlap_fine(self, fmt, model):
        handle, truth = handle_for(fmt, model)
        dec = BlockDecomposition((12, 12, 12), 8)
        blocks = []
        for b in dec.blocks():
            rs, rc, _gl = b.ghost_read((12, 12, 12), ghost=1)
            blocks.append((rs, rc))
        arrays, _report = collective_read_blocks(handle, blocks)
        for (start, count), arr in zip(blocks, arrays):
            sl = tuple(slice(s, s + c) for s, c in zip(start, count))
            assert np.array_equal(arr, truth[sl])


class TestFormatSpecifics:
    def test_netcdf_density_below_one(self, model):
        """Reading one of five interleaved variables touches extra bytes."""
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        report = plan_read_blocks(handle, nprocs=4, hints=IOHints(cb_buffer_size=2048, cb_nodes=2))
        assert report.density < 0.9

    def test_raw_density_is_one(self, model):
        handle = RawHandle(extract_variable_raw(model, "vx"))
        report = plan_read_blocks(handle, nprocs=4)
        assert report.density == pytest.approx(1.0)

    def test_h5lite_metadata_logged(self, model):
        handle = H5LiteHandle(write_vh1_h5lite(model), "vx")
        log = AccessLog()
        dec = BlockDecomposition((12, 12, 12), 4)
        blocks = [(b.start, b.count) for b in dec.blocks()]
        _arrays, report = collective_read_blocks(handle, blocks, log=log)
        assert report.meta_accesses_per_proc == 13
        assert len(log.meta_accesses()) == 13 * 4

    def test_netcdf_record_bytes(self, model):
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        assert handle.record_bytes == 12 * 12 * 4

    def test_record_bytes_requires_record_var(self, model):
        nc = write_vh1_netcdf(model, version=5, record_axis_unlimited=False)
        handle = NetCDFHandle(nc, "vx")
        with pytest.raises(FormatError, match="not a record"):
            _ = handle.record_bytes

    def test_tuned_buffer_improves_netcdf_density(self, model):
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        rec = handle.record_bytes
        untuned = plan_read_blocks(handle, 4, IOHints(cb_buffer_size=8 * rec, cb_nodes=1))
        tuned = plan_read_blocks(handle, 4, IOHints(cb_buffer_size=rec, cb_nodes=1))
        assert tuned.density > untuned.density
