"""The plan/issue/wait split must be byte-identical to the sync path.

``collective_read_blocks`` is now literally ``async().issue().wait()``,
so the sync entry point can't drift — these tests pin the *split* form:
the plan is available before issue, issue is idempotent, wait assembles
lazily, and the arrays / IOReport / access-log records all match the
sequential call exactly.
"""

import numpy as np
import pytest

from repro.data.synthetic import SupernovaModel
from repro.data.vh1 import extract_variable_raw, write_vh1_h5lite, write_vh1_netcdf
from repro.pio.hints import IOHints
from repro.pio.reader import (
    H5LiteHandle,
    NetCDFHandle,
    RawHandle,
    collective_read_blocks,
    collective_read_blocks_async,
)
from repro.storage.stripedfs import StripedFile
from repro.pio.twophase import TwoPhaseReader
from repro.render.decomposition import BlockDecomposition
from repro.storage.accesslog import AccessLog

GRID = (12, 12, 12)
HINTS = IOHints(cb_buffer_size=4096, cb_nodes=2)


@pytest.fixture(scope="module")
def model():
    return SupernovaModel(GRID, seed=5)


def handle_for(fmt: str, model):
    if fmt == "raw":
        return RawHandle(extract_variable_raw(model, "vx"))
    if fmt == "netcdf":
        return NetCDFHandle(write_vh1_netcdf(model), "vx")
    return H5LiteHandle(write_vh1_h5lite(model), "vx")


def blocks_for(nprocs=4):
    return [(b.start, b.count) for b in BlockDecomposition(GRID, nprocs).blocks()]


@pytest.mark.parametrize("fmt", ("raw", "netcdf", "h5lite"))
class TestAsyncBlockRead:
    def test_matches_sync_path(self, fmt, model):
        handle = handle_for(fmt, model)
        blocks = blocks_for()
        sync_log, async_log = AccessLog(), AccessLog()
        arrays, report = collective_read_blocks(handle, blocks, HINTS, log=sync_log)
        pending = collective_read_blocks_async(handle, blocks, HINTS, log=async_log)
        a_arrays, a_report = pending.issue().wait()
        for x, y in zip(arrays, a_arrays):
            assert np.array_equal(x, y)
        assert a_report.requested_bytes == report.requested_bytes
        assert a_report.nprocs == report.nprocs
        assert a_report.density == pytest.approx(report.density)
        assert len(a_report.plan.accesses) == len(report.plan.accesses)
        assert async_log.accesses == sync_log.accesses

    def test_plan_available_before_issue(self, fmt, model):
        handle = handle_for(fmt, model)
        pending = collective_read_blocks_async(handle, blocks_for(), HINTS)
        assert not pending.issued
        assert pending.report.requested_bytes > 0
        assert pending.report.plan.accesses  # priceable before any read

    def test_issue_idempotent_wait_cached(self, fmt, model):
        handle = handle_for(fmt, model)
        log = AccessLog()
        pending = collective_read_blocks_async(handle, blocks_for(), HINTS, log=log)
        pending.issue().issue()
        n_records = len(log.accesses)
        first, _ = pending.wait()
        again, _ = pending.wait()
        assert len(log.accesses) == n_records  # no re-reads
        for x, y in zip(first, again):
            assert x is y  # cached, not reassembled

    def test_wait_without_issue_issues(self, fmt, model):
        handle = handle_for(fmt, model)
        arrays, _ = collective_read_blocks(handle, blocks_for(), HINTS)
        pending = collective_read_blocks_async(handle, blocks_for(), HINTS)
        a_arrays, _ = pending.wait()
        for x, y in zip(arrays, a_arrays):
            assert np.array_equal(x, y)


class TestPendingCollectiveRead:
    def _reader(self, model, log):
        handle = RawHandle(extract_variable_raw(model, "vx"))
        from repro.pio.reader import _store_of
        return TwoPhaseReader(StripedFile(_store_of(handle)), HINTS, log), handle

    def test_split_matches_collective_read(self, model):
        log_a, log_b = AccessLog(), AccessLog()
        reader_a, handle = self._reader(model, log_a)
        reader_b, _ = self._reader(model, log_b)
        ranges = [list(handle.subarray_ranges(s, c)) for s, c in blocks_for()]
        got_a, plan_a = reader_a.collective_read(ranges)
        got_b, plan_b = reader_b.begin_collective_read(ranges).issue().wait()
        assert got_a == got_b
        assert len(plan_a.accesses) == len(plan_b.accesses)
        assert log_a.accesses == log_b.accesses

    def test_buffers_released_after_wait(self, model):
        reader, handle = self._reader(model, AccessLog())
        ranges = [list(handle.subarray_ranges(s, c)) for s, c in blocks_for()]
        pending = reader.begin_collective_read(ranges)
        pending.issue()
        pending.wait()
        assert pending._buffers == []  # window buffers dropped
