"""MPI-IO hints."""

import pytest

from repro.pio.hints import IOHints, tuned_netcdf_hints
from repro.utils.errors import ConfigError
from repro.utils.units import MIB


class TestIOHints:
    def test_defaults(self):
        h = IOHints()
        assert h.cb_buffer_size == 16 * MIB
        assert h.read_full_window

    def test_with_aggregators(self):
        h = IOHints().with_aggregators(32)
        assert h.cb_nodes == 32
        assert IOHints().with_aggregators(0).cb_nodes == 1  # clamped

    def test_with_buffer(self):
        assert IOHints().with_buffer(1024).cb_buffer_size == 1024

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            IOHints(cb_buffer_size=0)
        with pytest.raises(ConfigError):
            IOHints(cb_nodes=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            IOHints().cb_nodes = 5  # type: ignore[misc]


class TestTunedHints:
    def test_buffer_set_to_record(self):
        h = tuned_netcdf_hints(1120 * 1120 * 4)
        assert h.cb_buffer_size == 1120 * 1120 * 4

    def test_preserves_base(self):
        base = IOHints(cb_nodes=64)
        h = tuned_netcdf_hints(5000, base)
        assert h.cb_nodes == 64
        assert h.cb_buffer_size == 5000

    def test_invalid_record_size(self):
        with pytest.raises(ConfigError):
            tuned_netcdf_hints(0)
