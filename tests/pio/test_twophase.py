"""Two-phase planner and executor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pio.hints import IOHints
from repro.pio.twophase import (
    TwoPhaseReader,
    merge_intervals,
    plan_data_sieving,
    plan_two_phase,
)
from repro.storage.accesslog import AccessLog
from repro.storage.store import MemoryStore
from repro.storage.stripedfs import StripedFile
from repro.utils.errors import StorageError

intervals_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=0, max_value=5_000),
    ),
    max_size=30,
)


class TestMergeIntervals:
    def test_merges_overlaps(self):
        assert merge_intervals([(0, 10), (5, 10)]) == [(0, 15)]

    def test_merges_touching(self):
        assert merge_intervals([(0, 10), (10, 5)]) == [(0, 15)]

    def test_keeps_gaps(self):
        assert merge_intervals([(0, 10), (20, 5)]) == [(0, 10), (20, 5)]

    def test_min_gap_coalesces(self):
        assert merge_intervals([(0, 10), (20, 5)], min_gap=11) == [(0, 25)]

    def test_drops_empty(self):
        assert merge_intervals([(5, 0), (1, 2)]) == [(1, 2)]

    def test_negative_offset_rejected(self):
        with pytest.raises(StorageError):
            merge_intervals([(-1, 5)])

    @settings(max_examples=50, deadline=None)
    @given(intervals_strategy)
    def test_merged_intervals_are_sorted_disjoint_and_cover(self, intervals):
        merged = merge_intervals(intervals)
        for i in range(1, len(merged)):
            prev_end = merged[i - 1][0] + merged[i - 1][1]
            assert merged[i][0] > prev_end  # strictly separated
        # Coverage: every input byte is inside some merged interval.
        for off, length in intervals:
            if length == 0:
                continue
            assert any(m0 <= off and off + length <= m0 + ml for m0, ml in merged)


class TestPlanTwoPhase:
    def test_contiguous_request_reads_exactly_windows(self):
        plan = plan_two_phase([(0, 1000)], IOHints(cb_buffer_size=256, cb_nodes=1))
        assert plan.physical_bytes == 1000
        assert plan.num_accesses == 4
        assert plan.density == 1.0

    def test_empty_request(self):
        plan = plan_two_phase([], IOHints())
        assert plan.num_accesses == 0
        assert plan.density == 0.0

    def test_sparse_request_skips_empty_windows(self):
        # Needed bytes every 1000, window 100 -> only windows with data read.
        needed = [(i * 1000, 10) for i in range(10)]
        plan = plan_two_phase(needed, IOHints(cb_buffer_size=100, cb_nodes=1))
        assert plan.requested_bytes == 100
        assert plan.num_accesses == 10
        assert plan.physical_bytes <= 10 * 100

    def test_windows_larger_than_gaps_read_everything(self):
        """The untuned-netCDF effect: big windows straddle every hole."""
        needed = [(i * 1000, 10) for i in range(10)]
        plan = plan_two_phase(needed, IOHints(cb_buffer_size=2000, cb_nodes=1))
        span = needed[-1][0] + 10 - needed[0][0]
        assert plan.physical_bytes >= span * 0.9

    def test_trimmed_mode_reads_less(self):
        needed = [(i * 1000, 10) for i in range(10)]
        full = plan_two_phase(needed, IOHints(cb_buffer_size=100, cb_nodes=1))
        trimmed = plan_two_phase(
            needed, IOHints(cb_buffer_size=100, cb_nodes=1, read_full_window=False)
        )
        assert trimmed.physical_bytes == 100  # exactly the needed bytes
        assert trimmed.physical_bytes <= full.physical_bytes

    def test_aggregators_partition_domains(self):
        plan = plan_two_phase([(0, 10_000)], IOHints(cb_buffer_size=1000, cb_nodes=4))
        per_agg = plan.per_aggregator_bytes()
        assert per_agg.sum() == plan.physical_bytes
        assert np.all(per_agg == 2500)

    def test_accesses_never_overlap_domains(self):
        plan = plan_two_phase([(0, 9999)], IOHints(cb_buffer_size=512, cb_nodes=3))
        spans = sorted((a.offset, a.offset + a.length) for a in plan.accesses)
        for i in range(1, len(spans)):
            assert spans[i][0] >= spans[i - 1][1]

    def test_request_past_file_end_rejected(self):
        with pytest.raises(StorageError, match="past file end"):
            plan_two_phase([(0, 100)], IOHints(), file_size=50)

    @settings(max_examples=50, deadline=None)
    @given(
        intervals_strategy,
        st.integers(min_value=64, max_value=4096),
        st.integers(min_value=1, max_value=8),
    )
    def test_plan_covers_every_requested_byte(self, intervals, buf, naggs):
        plan = plan_two_phase(intervals, IOHints(cb_buffer_size=buf, cb_nodes=naggs))
        merged = merge_intervals(intervals)
        # Every needed interval must be fully covered by the accesses.
        covered = merge_intervals([(a.offset, a.length) for a in plan.accesses])
        for off, length in merged:
            pos = off
            for c0, cl in covered:
                if c0 <= pos < c0 + cl:
                    pos = c0 + cl
                if pos >= off + length:
                    break
            assert pos >= off + length, (off, length, covered)


class TestDataSieving:
    def test_small_gaps_sieved_through(self):
        plan = plan_data_sieving([(0, 10), (50, 10)], IOHints(ind_rd_buffer_size=100))
        assert plan.physical_bytes == 60  # reads straight through the hole

    def test_large_gaps_split(self):
        plan = plan_data_sieving([(0, 10), (5000, 10)], IOHints(ind_rd_buffer_size=100))
        assert plan.physical_bytes == 20

    def test_chunked_by_buffer(self):
        plan = plan_data_sieving([(0, 1000)], IOHints(ind_rd_buffer_size=256))
        assert plan.num_accesses == 4


class TestTwoPhaseReader:
    def _file(self, nbytes=8192):
        data = bytes(range(256)) * (nbytes // 256)
        return StripedFile(MemoryStore(data))

    def test_collective_read_returns_each_ranks_bytes(self):
        f = self._file()
        reader = TwoPhaseReader(f, IOHints(cb_buffer_size=512, cb_nodes=2))
        per_rank = [[(0, 10)], [(100, 20), (4000, 5)], [(8000, 192)]]
        out, plan = reader.collective_read(per_rank)
        raw = f.store.getvalue()
        assert out[0] == raw[0:10]
        assert out[1] == raw[100:120] + raw[4000:4005]
        assert out[2] == raw[8000:8192]
        assert plan.requested_bytes == 10 + 25 + 192

    def test_overlapping_rank_requests_ok(self):
        """Ghost zones: neighbouring ranks request overlapping bytes."""
        f = self._file()
        reader = TwoPhaseReader(f)
        out, _plan = reader.collective_read([[(0, 100)], [(50, 100)]])
        raw = f.store.getvalue()
        assert out[0] == raw[:100]
        assert out[1] == raw[50:150]

    def test_accesses_logged(self):
        log = AccessLog()
        reader = TwoPhaseReader(self._file(), IOHints(cb_buffer_size=1024, cb_nodes=1), log)
        reader.collective_read([[(0, 2048)]])
        assert log.count == 2
        assert log.total_bytes == 2048

    def test_independent_read(self):
        f = self._file()
        reader = TwoPhaseReader(f, IOHints(ind_rd_buffer_size=512))
        out, plan = reader.independent_read([(10, 20), (100, 50)])
        raw = f.store.getvalue()
        assert out == raw[10:30] + raw[100:150]
        assert plan.physical_bytes >= 140  # sieved through the hole


class TestCollectiveWrite:
    def _reader(self, initial=b"", buf=512, naggs=2):
        f = StripedFile(MemoryStore(initial))
        return TwoPhaseReader(f, IOHints(cb_buffer_size=buf, cb_nodes=naggs))

    def test_disjoint_writes_land(self):
        reader = self._reader()
        reader.collective_write([[(0, b"AAAA")], [(10, b"BB")], [(4, b"CC")]])
        raw = reader.file.store.getvalue()
        assert raw[0:4] == b"AAAA"
        assert raw[4:6] == b"CC"
        assert raw[10:12] == b"BB"

    def test_read_modify_write_preserves_existing(self):
        """A window spanning a hole between two pieces must pre-read it."""
        reader = self._reader(initial=b"x" * 64, buf=32, naggs=1)
        reader.collective_write([[(10, b"NEW")], [(20, b"Q")]])
        raw = reader.file.store.getvalue()
        assert raw[:10] == b"x" * 10
        assert raw[10:13] == b"NEW"
        assert raw[13:20] == b"x" * 7  # the hole survived
        assert raw[20:21] == b"Q"
        assert raw[21:64] == b"x" * 43
        # The RMW shows up as a logged physical read.
        assert any(a.kind == "read" for a in reader.log.accesses)
        assert any(a.kind == "write" for a in reader.log.accesses)

    def test_fully_covered_window_skips_preread(self):
        reader = self._reader(initial=b"y" * 64, buf=16, naggs=1)
        reader.collective_write([[(16, bytes(16))]])
        reads = [a for a in reader.log.accesses if a.kind == "read"]
        assert reads == []

    def test_overlapping_writes_rejected(self):
        reader = self._reader()
        with pytest.raises(StorageError, match="overlapping"):
            reader.collective_write([[(0, b"AAAA")], [(2, b"BB")]])

    def test_roundtrip_through_collective_read(self):
        reader = self._reader(buf=128, naggs=3)
        rng_data = bytes(range(256)) * 4
        # Four ranks write quarters out of order.
        writes = [[(256 * ((r * 3) % 4), rng_data[256 * ((r * 3) % 4) : 256 * ((r * 3) % 4) + 256])] for r in range(4)]
        reader.collective_write(writes)
        out, _plan = reader.collective_read([[(0, 1024)]])
        assert out[0] == rng_data

    def test_empty_write(self):
        reader = self._reader()
        plan = reader.collective_write([[], [(5, b"")]])
        assert plan.num_accesses == 0
