"""Trace <-> pipeline reconciliation: the observability layer must
report exactly what the frame did.

Three identities are load-bearing:

* per-stage max-across-ranks in the trace == ``FrameTiming`` (the
  timing object is a *derived view* of the trace);
* the tracer's message/byte counters == ``FrameResult.messages`` /
  ``bytes_sent`` (one hook, one truth);
* tracing on vs off changes no pixel (observability is read-only).
"""

import json

import numpy as np
import pytest

from repro.core import ParallelVolumeRenderer
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.obs import CAT_COLL, CAT_COMM, CAT_PROC, CAT_STAGE, Tracer, chrome_trace
from repro.pio import IOHints, NetCDFHandle
from repro.render import Camera, TransferFunction
from repro.storage.accesslog import AccessLog
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)


@pytest.fixture(scope="module")
def handle():
    model = SupernovaModel(GRID, seed=7)
    return NetCDFHandle(write_vh1_netcdf(model), "vx"), model


def make_renderer(model, tracer=None, nprocs=8):
    cam = Camera.looking_at_volume(GRID, width=40, height=36)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    return ParallelVolumeRenderer(
        MPIWorld.for_cores(nprocs), cam, tf, step=0.8,
        hints=IOHints(cb_buffer_size=4096, cb_nodes=2), tracer=tracer,
    )


class TestReconciliation:
    def test_stage_maxima_equal_frame_timing(self, handle):
        h, model = handle
        tracer = Tracer()
        res = make_renderer(model, tracer).render_frame(h)
        maxima = tracer.stage_maxima()
        assert maxima["io"] == res.timing.io_s
        assert maxima["render"] == res.timing.render_s
        assert maxima["composite"] == res.timing.composite_s
        # Every rank contributed all three stages.
        durations = tracer.stage_durations()
        for stage in ("io", "render", "composite"):
            assert sorted(durations[stage]) == list(range(8))

    def test_counters_match_frame_result(self, handle):
        h, model = handle
        tracer = Tracer()
        res = make_renderer(model, tracer).render_frame(h)
        assert tracer.counter("messages") == res.messages
        assert tracer.counter("bytes") == res.bytes_sent
        # Comm spans are per-message: one span each.
        assert len(tracer.frame_spans(cat=CAT_COMM)) == res.messages
        sum_bytes = sum(s.args["nbytes"] for s in tracer.frame_spans(cat=CAT_COMM))
        assert sum_bytes == res.bytes_sent

    def test_trace_attached_to_result_only_when_enabled(self, handle):
        h, model = handle
        tracer = Tracer()
        res_on = make_renderer(model, tracer).render_frame(h)
        res_off = make_renderer(model).render_frame(h)
        assert res_on.trace is tracer
        assert res_off.trace is None

    def test_collective_proc_and_io_spans_present(self, handle):
        h, model = handle
        tracer = Tracer()
        log = AccessLog()
        make_renderer(model, tracer).render_frame(h, log=log)
        colls = {s.name for s in tracer.frame_spans(cat=CAT_COLL)}
        assert "barrier" in colls and "gather" in colls
        procs = tracer.frame_spans(cat=CAT_PROC)
        assert len(procs) == 8 and all(s.args["steps"] > 0 for s in procs)
        io_spans = tracer.frame_spans(cat="io")
        assert len(io_spans) == len(log.accesses)
        # Bridged spans sit inside the frame's I/O window.
        io_end = tracer.stage_maxima()["io"]
        assert all(0.0 <= s.t0 and s.t1 <= io_end + 1e-9 for s in io_spans)

    def test_multi_frame_tracer_keeps_frames_apart(self, handle):
        h, model = handle
        tracer = Tracer()
        r = make_renderer(model, tracer)
        t0 = r.render_frame(h).timing
        t1 = r.render_frame(h).timing
        assert tracer.frame == 1
        assert tracer.stage_maxima(frame=0)["io"] == t0.io_s
        assert tracer.stage_maxima(frame=1)["io"] == t1.io_s

    def test_chrome_export_of_real_frame_is_valid(self, handle, tmp_path):
        h, model = handle
        tracer = Tracer()
        make_renderer(model, tracer).render_frame(h)
        doc = json.loads(json.dumps(chrome_trace(tracer)))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tracer.spans)
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in xs)
        assert {e["name"] for e in xs} >= {"io", "render", "composite"}


class TestTracingIsReadOnly:
    @pytest.mark.parametrize("nprocs", (4, 8))
    def test_traced_frame_is_bitwise_identical(self, handle, nprocs):
        h, model = handle
        res_off = make_renderer(model, nprocs=nprocs).render_frame(h)
        res_on = make_renderer(model, Tracer(), nprocs=nprocs).render_frame(h)
        assert np.array_equal(res_off.image, res_on.image)
        assert res_off.timing == res_on.timing
        assert res_off.messages == res_on.messages
        assert res_off.bytes_sent == res_on.bytes_sent

    def test_disabled_tracer_leaves_only_stage_spans(self, handle):
        h, model = handle
        tracer = Tracer(enabled=False)
        make_renderer(model, tracer).render_frame(h)
        # A disabled tracer rides through the whole stack but records
        # only the stage spans FrameTiming derives from.
        assert all(s.cat == CAT_STAGE for s in tracer.spans)
        assert tracer.counters == {}
