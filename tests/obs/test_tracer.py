"""Unit tests: the Tracer record and the two exporters."""

import json

from repro.obs import (
    CAT_COMM,
    CAT_STAGE,
    Span,
    Tracer,
    chrome_trace,
    span_summary,
    stage_report,
    write_chrome_trace,
)


class TestRecording:
    def test_disabled_tracer_records_no_detail(self):
        tr = Tracer(enabled=False)
        tr.span(0, "msg->1", CAT_COMM, 0.0, 1.0, nbytes=64)
        tr.count("messages")
        tr.link(0, 1, 64)
        assert tr.spans == []
        assert tr.counters == {}
        assert tr.link_bytes == {}

    def test_stage_spans_record_even_when_disabled(self):
        # FrameTiming is derived from stage spans, so they bypass the
        # enabled gate — this is the contract the pipeline relies on.
        tr = Tracer(enabled=False)
        tr.stage(0, "io", 0.0, 2.0)
        tr.stage(1, "io", 0.0, 3.0)
        assert len(tr.spans) == 2
        assert tr.stage_maxima() == {"io": 3.0}

    def test_enabled_tracer_records_everything(self):
        tr = Tracer()
        tr.span(2, "msg->0", CAT_COMM, 1.0, 1.5, nbytes=128)
        tr.count("messages")
        tr.count("bytes", 128)
        tr.link(1, 0, 128)
        assert len(tr.spans) == 1
        s = tr.spans[0]
        assert (s.rank, s.cat, s.dur) == (2, CAT_COMM, 0.5)
        assert s.args == {"nbytes": 128}
        assert tr.counter("messages") == 1
        assert tr.counter("bytes") == 128
        assert tr.link_bytes == {(1, 0): 128}

    def test_begin_frame_partitions_spans(self):
        tr = Tracer()
        assert tr.begin_frame() == 0  # nothing recorded yet: stay at 0
        tr.stage(0, "io", 0.0, 1.0)
        assert tr.begin_frame() == 1
        tr.stage(0, "io", 0.0, 5.0)
        assert [s.frame for s in tr.spans] == [0, 1]
        assert tr.stage_maxima(frame=0) == {"io": 1.0}
        assert tr.stage_maxima(frame=1) == {"io": 5.0}
        assert tr.stage_maxima() == {"io": 5.0}  # defaults to current

    def test_stage_durations_by_rank(self):
        tr = Tracer()
        tr.stage(0, "render", 1.0, 3.0)
        tr.stage(1, "render", 1.0, 2.5)
        assert tr.stage_durations() == {"render": {0: 2.0, 1: 1.5}}


class TestChromeExport:
    def _tracer(self):
        tr = Tracer()
        tr.stage(0, "io", 0.0, 1.0)
        tr.stage(1, "io", 0.0, 1.25)
        tr.span(0, "msg->1", CAT_COMM, 0.5, 0.75, nbytes=16)
        tr.count("messages")
        return tr

    def test_events_are_valid_trace_event_format(self):
        doc = chrome_trace(self._tracer())
        assert isinstance(doc["traceEvents"], list)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        for e in xs:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert e["dur"] >= 0
        # Simulated seconds map to trace microseconds.
        io0 = next(e for e in xs if e["name"] == "io" and e["tid"] == 0)
        assert io0["dur"] == 1e6

    def test_metadata_names_lanes(self):
        doc = chrome_trace(self._tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e.get("tid")) for e in meta}
        assert ("thread_name", 0) in names and ("thread_name", 1) in names
        assert any(e["name"] == "process_name" for e in meta)

    def test_written_file_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._tracer(), str(path))
        doc = json.loads(path.read_text())
        assert doc["otherData"]["counters"] == {"messages": 1}

    def test_span_summary(self):
        agg = span_summary(self._tracer())
        assert agg[CAT_STAGE]["count"] == 2
        assert agg[CAT_COMM]["seconds"] == 0.25


class TestStageReport:
    def test_report_has_stage_rows_and_percentages(self):
        tr = Tracer()
        for rank, t in enumerate((1.0, 2.0, 3.0)):
            tr.stage(rank, "io", 0.0, t)
            tr.stage(rank, "render", t, t + 1.0)
            tr.stage(rank, "composite", t + 1.0, t + 1.1)
        text = stage_report(tr)
        assert "io" in text and "render" in text and "composite" in text
        # max io = 3.0, max render = 1.0, max composite ~ 0.1.
        assert "73.2%" in text  # 3.0 / 4.1
        assert "rank" in text  # per-rank table present for small p

    def test_empty_tracer_reports_gracefully(self):
        assert "no stage spans" in stage_report(Tracer())

    def test_span_dataclass_duration(self):
        assert Span(0, "x", CAT_STAGE, 1.0, 4.0).dur == 3.0
