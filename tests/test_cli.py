"""The command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_render_writes_ppm(self, tmp_path, capsys):
        out = tmp_path / "frame.ppm"
        rc = main([
            "render", "--grid", "12", "--cores", "4", "--image", "16",
            "--out", str(out),
        ])
        assert rc == 0
        data = out.read_bytes()
        assert data.startswith(b"P6\n16 16\n255\n")
        text = capsys.readouterr().out
        assert "frame" in text and "compositors" in text

    @pytest.mark.parametrize("name", ("dfb", "binaryswap", "radixk", "serial"))
    def test_render_compositor_choices(self, tmp_path, capsys, name):
        out = tmp_path / "frame.ppm"
        rc = main([
            "render", "--grid", "12", "--cores", "4", "--image", "16",
            "--compositor", name, "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert f"compositor {name}" in capsys.readouterr().out

    def test_render_puzzlepiece_reports_drops(self, tmp_path, capsys):
        out = tmp_path / "frame.ppm"
        rc = main([
            "render", "--grid", "16", "--cores", "8", "--image", "32",
            "--compositor", "puzzlepiece", "--error-budget", "0.05",
            "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "compositor puzzlepiece" in text
        assert "error bound" in text

    @pytest.mark.parametrize("fmt", ("raw", "h5lite"))
    def test_render_other_formats(self, tmp_path, fmt):
        out = tmp_path / "f.ppm"
        rc = main([
            "render", "--grid", "10", "--cores", "4", "--image", "12",
            "--format", fmt, "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()

    def test_trace_writes_chrome_json_and_report(self, tmp_path, capsys):
        import json

        trace_out = tmp_path / "trace.json"
        report_out = tmp_path / "trace.txt"
        rc = main([
            "trace", "--grid", "12", "--cores", "4", "--image", "24",
            "--trace-out", str(trace_out), "--report-out", str(report_out),
        ])
        assert rc == 0
        doc = json.loads(trace_out.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "render" for e in events)
        assert any(e["ph"] == "M" for e in events)
        report = report_out.read_text()
        assert "io" in report and "composite" in report and "% frame" in report
        text = capsys.readouterr().out
        assert "spans" in text and "per-stage breakdown" in text

    def test_timeseries_check_and_outputs(self, tmp_path, capsys):
        import json

        trace_out = tmp_path / "campaign.json"
        rc = main([
            "timeseries", "--steps", "3", "--grid", "12", "--cores", "8",
            "--image", "24", "--prefetch-depth", "2", "--check",
            "--trace-out", str(trace_out), "--out", str(tmp_path / "frame"),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "bitwise identical to the sequential oracle" in text
        assert "pipelined" in text and "saved" in text
        doc = json.loads(trace_out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "read[0]" in names and "frame[2]" in names
        for i in range(3):
            assert (tmp_path / f"frame{i:04d}.ppm").exists()

    def test_timeseries_raw_fair_discipline(self, capsys):
        rc = main([
            "timeseries", "--steps", "2", "--grid", "12", "--cores", "4",
            "--image", "24", "--format", "raw", "--discipline", "fair",
            "--orbit-degrees", "0", "--check",
        ])
        assert rc == 0

    def test_model_prints_breakdown(self, capsys):
        rc = main(["model", "--dataset", "1120", "--cores", "16384"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "I/O" in text and "composite" in text and "total" in text
        assert "16384 cores" in text

    def test_model_original_compositing_slower(self, capsys):
        main(["model", "--dataset", "1120", "--cores", "32768"])
        improved = capsys.readouterr().out
        main(["model", "--dataset", "1120", "--cores", "32768", "--original-compositing"])
        original = capsys.readouterr().out

        def total(text):
            return float([ln for ln in text.splitlines() if "total" in ln][0].split()[1])

        assert total(original) > total(improved)

    def test_scorecard(self, capsys):
        rc = main(["scorecard"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "anchor" in text and "within 2x" in text

    def test_inventory(self, capsys):
        rc = main(["inventory"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "163840 cores" in text
        assert "17 SANs" in text
        assert "torus" in text

    def test_farm_scenario_file_to_json_summary(self, tmp_path, capsys):
        import json

        spec = {
            "seed": 5,
            "mode": "model",
            "total_nodes": 2048,
            "slo_s": 300.0,
            "size_policy": {"min_nodes": 256, "max_nodes": 1024},
            "sessions": [
                {"name": "browse", "kind": "browse", "arrival": "open",
                 "requests": 8, "rate_hz": 0.5, "cores": 4096, "steps": 4},
                {"name": "orbit", "kind": "orbit", "arrival": "closed",
                 "requests": 6, "think_s": 2.0, "cores": 2048},
            ],
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        rc = main(["farm", "--scenario", str(path), "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["requests"] == 14
        assert summary["sessions"] == 2
        assert {"p50", "p95", "p99"} <= summary["latency_s"].keys()
        assert 0.0 <= summary["machine"]["utilization"] <= 1.0
        assert "result_hit_rate" in summary["cache"]
        assert set(summary["per_session"]) == {"browse", "orbit"}

    def test_farm_default_report(self, capsys):
        rc = main(["farm", "--seed", "2", "--no-result-cache"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "p50" in text and "p95" in text and "p99" in text
        assert "utilization" in text and "SLO" in text

    def test_farm_selftest(self, capsys):
        rc = main(["farm", "--selftest"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "farm selftest ok" in text

    def test_farm_trace_out(self, tmp_path):
        import json

        trace_out = tmp_path / "farm-trace.json"
        rc = main([
            "farm", "--selftest", "--trace-out", str(trace_out),
        ])
        assert rc == 0
        doc = json.loads(trace_out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"queue", "serve"} <= names

    def test_farm_bad_scenario_returns_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"sessions": [], "typo": true}')
        rc = main(["farm", "--scenario", str(path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["transmogrify"])

    def test_error_path_returns_2(self, tmp_path, capsys):
        # 256 cores cannot decompose a 4-voxel grid: a clean error.
        rc = main([
            "render", "--grid", "4", "--cores", "256", "--image", "8",
            "--out", str(tmp_path / "x.ppm"),
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestProgressiveCLI:
    def test_check_verifies_bitwise_final(self, tmp_path, capsys):
        trace_out = tmp_path / "ladder.json"
        rc = main([
            "progressive", "--grid", "10", "--cores", "4", "--image", "16",
            "--levels", "3", "--check", "--trace-out", str(trace_out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "3/3 ladder levels delivered" in text
        assert "bitwise identical" in text
        import json

        doc = json.loads(trace_out.read_text())
        names = [e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert names.count("level") == 3

    def test_cancel_after_truncates_the_ladder(self, capsys):
        rc = main([
            "progressive", "--grid", "10", "--cores", "4", "--image", "16",
            "--levels", "3", "--cancel-after", "0.001",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "1/3 ladder levels delivered" in text
        assert "cancelled 2 level(s)" in text

    def test_levels_written_as_ppm(self, tmp_path):
        prefix = tmp_path / "ladder"
        rc = main([
            "progressive", "--grid", "10", "--cores", "4", "--image", "16",
            "--levels", "2", "--out", str(prefix),
        ])
        assert rc == 0
        assert (tmp_path / "ladder_L0.ppm").read_bytes().startswith(b"P6\n8 8\n")
        assert (tmp_path / "ladder_L1.ppm").read_bytes().startswith(b"P6\n16 16\n")

    def test_farm_interactive_selftest(self, capsys):
        rc = main(["farm", "--interactive-selftest"])
        assert rc == 0
        assert "farm interactive selftest ok" in capsys.readouterr().out


class TestInsituCLI:
    def test_table_shows_io_avoided(self, capsys):
        rc = main(["insitu", "--steps", "40", "--render-every", "8"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "post-hoc" in text and "in-situ" in text
        assert "storage round-trip avoided" in text

    def test_json_comparison(self, capsys):
        import json

        rc = main([
            "insitu", "--dataset", "2240", "--cores", "32768",
            "--steps", "100", "--render-every", "10", "--json",
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["frames"] == 10
        assert report["posthoc_s"] > report["insitu_s"] > 0
        assert report["speedup"] == pytest.approx(
            report["posthoc_s"] / report["insitu_s"]
        )
        assert report["io_avoided_s"] == pytest.approx(
            report["posthoc_s"] - report["insitu_s"]
        )

    def test_bad_steps_rejected(self, capsys):
        rc = main(["insitu", "--steps", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestBenchCLI:
    def test_list_names_the_registry(self, capsys):
        rc = main(["bench", "--list"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "progressive_refine_2048" in text
        assert "BENCH_progressive.json" in text

    def test_unknown_only_name_is_a_clean_error(self, capsys):
        rc = main(["bench", "--only", "no_such_kernel"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown benchmark name(s): no_such_kernel" in err
        assert "progressive_refine_2048" in err
