"""Unit tests for the DES primitives."""

import pytest

from repro.sim.events import AllOf, Delay, Event, Future
from repro.utils.errors import SimulationError


class TestEvent:
    def test_ordering_by_time(self):
        a = Event(1.0, 0, 1, lambda: None)
        b = Event(2.0, 0, 2, lambda: None)
        assert a < b

    def test_ordering_by_priority_at_same_time(self):
        a = Event(1.0, 0, 2, lambda: None)
        b = Event(1.0, 1, 1, lambda: None)
        assert a < b

    def test_ordering_by_seq_breaks_ties(self):
        a = Event(1.0, 0, 1, lambda: None)
        b = Event(1.0, 0, 2, lambda: None)
        assert a < b

    def test_cancel_marks_event(self):
        e = Event(1.0, 0, 1, lambda: None)
        assert not e.cancelled
        e.cancel()
        assert e.cancelled


class TestFuture:
    def test_resolve_sets_value(self):
        f = Future()
        f.resolve(42)
        assert f.done and f.value == 42

    def test_double_resolve_raises(self):
        f = Future()
        f.resolve(1)
        with pytest.raises(SimulationError, match="resolved twice"):
            f.resolve(2)

    def test_callback_fires_on_resolve(self):
        f = Future()
        got = []
        f.add_done_callback(got.append)
        assert got == []
        f.resolve("x")
        assert got == ["x"]

    def test_callback_fires_immediately_when_done(self):
        f = Future()
        f.resolve(7)
        got = []
        f.add_done_callback(got.append)
        assert got == [7]

    def test_callbacks_fire_in_registration_order(self):
        f = Future()
        order = []
        f.add_done_callback(lambda _v: order.append(1))
        f.add_done_callback(lambda _v: order.append(2))
        f.resolve(None)
        assert order == [1, 2]


class TestDelay:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            Delay(-0.5)

    def test_zero_delay_allowed(self):
        assert Delay(0.0).seconds == 0.0


class TestAllOf:
    def test_requires_futures(self):
        with pytest.raises(SimulationError, match="expects Futures"):
            AllOf([Future(), 3])  # type: ignore[list-item]

    def test_holds_futures_in_order(self):
        futures = [Future(name=str(i)) for i in range(3)]
        group = AllOf(futures)
        assert group.futures == futures
