"""Partition invariance of the conservative-parallel backend.

The backend's contract (DESIGN.md §12): for a fixed shard count, ANY
worker count produces bitwise-identical results — same per-rank
values, same simulated clock, same message/byte counts, same image.
The shard layout is fixed by the machine (not the worker count), so
these tests pin the whole observable surface of a run against the
1-worker reference, including under a non-zero fault plan.
"""

import hashlib

import numpy as np
import pytest

from repro.sim.parallel import ParallelConfig
from repro.sim.partition import ShardLayout
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld, VirtualPayload

WORKER_COUNTS = (1, 2, 4, 8)


def _directsend_program(schedule):
    from repro.compositing.directsend import COMPOSITE_TAG

    def program(ctx):
        batch = []
        for msg in schedule.outgoing(ctx.rank):
            dest = schedule.compositor_rank(msg.tile)
            if dest == ctx.rank:
                continue
            batch.append((dest, VirtualPayload(msg.nbytes)))
        reqs = ctx.isend_many(batch, COMPOSITE_TAG) if batch else []
        if ctx.rank < schedule.num_compositors:
            expected = [
                m for m in schedule.incoming(ctx.rank) if m.src != ctx.rank
            ]
            for _ in range(len(expected)):
                yield from ctx.recv(tag=COMPOSITE_TAG)
        yield from ctx.waitall(reqs)
        return ctx.rank

    return program


def _virtual_schedule(ranks: int, m: int):
    from repro.compositing.schedule import schedule_from_geometry
    from repro.render.camera import Camera
    from repro.render.decomposition import BlockDecomposition

    grid = (64, 64, 64)
    cam = Camera.looking_at_volume(grid, width=128, height=128)
    return schedule_from_geometry(BlockDecomposition(grid, ranks), cam, m)


def _fingerprint(res) -> tuple:
    return (
        res.elapsed_s,
        res.messages,
        res.bytes_sent,
        tuple(res.values),
        tuple(res.compute_seconds),
    )


class TestWorkerInvariance:
    def test_mixed_traffic_program(self):
        """p2p + collectives at 64 ranks: every surface field matches."""

        def program(ctx):
            right = (ctx.rank + 1) % ctx.size
            req = ctx.isend(np.arange(8) + ctx.rank, dest=right, tag=3)
            data = yield from ctx.recv(tag=3)
            yield from ctx.wait(req)
            total = yield from ctx.allreduce(int(data[0]), op="sum")
            yield from ctx.barrier()
            return total

        world = MPIWorld.for_cores(64)
        base = None
        for w in WORKER_COUNTS:
            res = world.run(program, parallel=ParallelConfig(workers=w))
            fp = _fingerprint(res)
            if base is None:
                base = fp
            else:
                assert fp == base, f"workers={w} diverged"

    @pytest.mark.parametrize("ranks,m", [(512, 512), (2048, 256)])
    def test_directsend_frame(self, ranks, m):
        """The paper's compositing pattern at 512 and 2048 ranks."""
        schedule = _virtual_schedule(ranks, m)
        program = _directsend_program(schedule)
        world = MPIWorld.for_cores(ranks)
        base = None
        for w in WORKER_COUNTS:
            res = world.run(program, parallel=ParallelConfig(workers=w))
            fp = _fingerprint(res)
            if base is None:
                base = fp
            else:
                assert fp == base, f"workers={w} diverged at n={ranks}"
        assert base[1] > 0  # the schedule actually moved messages

    def test_pipeline_frame_bitwise(self):
        """Full rendering pipeline: FrameResult timing, message/byte
        counts and the image hash are identical for every worker count
        (and the image matches the monolithic engine's)."""
        from repro.core import ParallelVolumeRenderer
        from repro.data import SupernovaModel, extract_variable_raw
        from repro.pio import RawHandle
        from repro.render import Camera, TransferFunction

        grid = (16, 16, 16)
        model = SupernovaModel(grid, seed=9, time=0.4)
        handle = RawHandle(extract_variable_raw(model, "density"))
        camera = Camera.looking_at_volume(grid, width=32, height=32)
        tf = TransferFunction.supernova(*model.value_range("density"))

        def frame(parallel):
            renderer = ParallelVolumeRenderer(
                MPIWorld.for_cores(512), camera, tf, parallel=parallel
            )
            result = renderer.render_frame(handle)
            digest = hashlib.sha256(
                np.ascontiguousarray(result.image).tobytes()
            ).hexdigest()
            return result, digest

        base = None
        for w in WORKER_COUNTS:
            result, digest = frame(ParallelConfig(workers=w))
            fp = (
                float(result.timing.total_s),
                float(result.timing.composite_s),
                result.messages,
                result.bytes_sent,
                digest,
            )
            if base is None:
                base = fp
            else:
                assert fp == base, f"workers={w} diverged"
        # The parallel backend changes send-completion semantics, so
        # simulated time differs slightly from the monolithic engine —
        # but the rendered pixels must be identical.
        mono, mono_digest = frame(None)
        assert mono_digest == base[4]

    def test_fault_plan_invariance(self):
        """A mid-stream node crash: in-flight messages to the dead
        node are lost, and the merged FaultReport (counts, dead set,
        availability/goodput) matches for every worker count."""
        from repro.fault import FaultPlan
        from repro.fault.plan import IOStraggler, NodeCrash
        from repro.utils.errors import RankFailed

        def program(ctx):
            # Fire-and-forget stream at a fixed offset; senders wait on
            # injection completion only, so a dead receiver loses the
            # message without blocking anyone.
            target = (ctx.rank + 16) % ctx.size
            reqs = []
            for _ in range(5):
                yield 1e-5
                try:
                    reqs.append(ctx.isend(VirtualPayload(2048), dest=target, tag=1))
                except RankFailed:
                    return -1
            yield from ctx.waitall(reqs)
            return ctx.rank

        plan = FaultPlan(
            node_crashes=(NodeCrash(3.3e-5, node=3),),
            io_stragglers=(IOStraggler(5, 1e-3),),
        )
        world = MPIWorld.for_cores(128)
        base = None
        for w in (1, 2, 4, 8):
            res = world.run(
                program, fault=plan, check_leaks=False,
                parallel=ParallelConfig(workers=w),
            )
            r = res.fault
            fp = _fingerprint(res) + (
                r.crashes, tuple(r.dead_ranks), r.messages_lost,
                r.straggler_delay_s, r.availability, r.goodput, r.mttr_s,
            )
            if base is None:
                base = fp
            else:
                assert fp == base, f"workers={w} diverged under faults"
        assert base[5] == 1  # the crash fired
        assert base[7] > 0  # and in-flight messages were actually lost


class TestConfigValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigError):
            ParallelConfig(workers=0)

    def test_message_faults_rejected(self):
        from repro.fault import FaultPlan

        plan = FaultPlan(drop_prob=0.1)
        world = MPIWorld.for_cores(8)
        with pytest.raises(ConfigError, match="drop/dup"):
            world.run(
                lambda ctx: iter(()), fault=plan,
                parallel=ParallelConfig(workers=2),
            )

    def test_window_wider_than_lookahead_rejected(self):
        world = MPIWorld.for_cores(8)
        too_wide = world.link.sw_overhead_s + world.link.hop_latency_s
        with pytest.raises(ConfigError, match="window"):
            world.run(
                lambda ctx: iter(()),
                parallel=ParallelConfig(workers=2, window_s=too_wide * 2),
            )


class TestShardLayout:
    def test_contiguous_covers_all_nodes(self):
        layout = ShardLayout.contiguous(13, 4)
        seen = []
        for s in range(layout.num_shards):
            block = list(layout.nodes_of(s))
            assert all(layout.shard_of_node(n) == s for n in block)
            seen.extend(block)
        assert seen == list(range(13))

    def test_worker_groups_partition_shards(self):
        layout = ShardLayout.contiguous(64)
        for workers in (1, 2, 3, 4, 8, 16):
            groups = layout.workers_for(workers)
            flat = [s for g in groups for s in g]
            assert flat == list(range(layout.num_shards))
            assert all(g for g in groups)

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(ConfigError):
            ShardLayout.contiguous(4, 8)
