"""Engine and process semantics: determinism, time, deadlock."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine
from repro.sim.events import AllOf, Delay, Future
from repro.utils.errors import DeadlockError, SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(2.0, lambda: order.append("b"))
        eng.schedule(1.0, lambda: order.append("a"))
        eng.schedule(3.0, lambda: order.append("c"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_creation_order(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.schedule(1.0, lambda i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        eng = Engine()
        seen = []
        eng.schedule(1.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [1.5]
        assert eng.now == 1.5

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: eng.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            eng.run()

    def test_cancelled_events_are_skipped(self):
        eng = Engine()
        fired = []
        ev = eng.schedule(1.0, lambda: fired.append("cancelled"))
        eng.schedule(2.0, lambda: fired.append("kept"))
        ev.cancel()
        eng.run()
        assert fired == ["kept"]

    def test_run_until_stops_at_time(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(10.0, lambda: fired.append(10))
        eng.run(until=5.0)
        assert fired == [1]
        assert eng.now == 5.0
        eng.run()
        assert fired == [1, 10]

    def test_step_runs_single_events_in_order(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(2.0, lambda: fired.append(2))
        assert eng.step() and fired == [1] and eng.now == 1.0
        assert eng.step() and fired == [1, 2] and eng.now == 2.0
        assert not eng.step()

    def test_step_rejects_time_running_backwards(self):
        # Regression: step() lacked run()'s monotonicity guard, so a
        # clock that somehow drifted ahead of the queue would silently
        # rewind instead of failing loudly.
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.now = 5.0  # simulate external clock drift / corruption
        with pytest.raises(SimulationError):
            eng.step()
        assert eng.now == 5.0  # the guard fired before rewinding

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_events_never_run_out_of_order(self, delays):
        eng = Engine()
        times = []
        for d in delays:
            eng.schedule(d, lambda: times.append(eng.now))
        eng.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestProcesses:
    def test_process_result_resolves_done(self):
        eng = Engine()

        def prog():
            yield Delay(1.0)
            return "result"

        p = eng.spawn(prog())
        eng.run()
        assert p.finished
        assert p.done.value == "result"

    def test_yield_plain_number_is_delay(self):
        eng = Engine()

        def prog():
            yield 2.5
            return eng.now

        p = eng.spawn(prog())
        eng.run()
        assert p.done.value == 2.5

    def test_yield_future_returns_value(self):
        eng = Engine()
        f = Future()
        eng.schedule(3.0, lambda: f.resolve("hello"))

        def prog():
            v = yield f
            return (v, eng.now)

        p = eng.spawn(prog())
        eng.run()
        assert p.done.value == ("hello", 3.0)

    def test_yield_resolved_future_resumes_immediately(self):
        eng = Engine()
        f = Future()
        f.resolve(9)

        def prog():
            v = yield f
            return v

        p = eng.spawn(prog())
        eng.run()
        assert p.done.value == 9
        assert eng.now == 0.0

    def test_allof_collects_values_in_order(self):
        eng = Engine()
        f1, f2 = Future(), Future()
        eng.schedule(2.0, lambda: f1.resolve("late"))
        eng.schedule(1.0, lambda: f2.resolve("early"))

        def prog():
            vals = yield AllOf([f1, f2])
            return vals

        p = eng.spawn(prog())
        eng.run()
        assert p.done.value == ["late", "early"]

    def test_allof_empty_resumes(self):
        eng = Engine()

        def prog():
            vals = yield AllOf([])
            return vals

        p = eng.spawn(prog())
        eng.run()
        assert p.done.value == []

    def test_child_process_composition(self):
        eng = Engine()

        def child():
            yield Delay(1.0)
            return 21

        def parent():
            c = eng.spawn(child(), name="child")
            v = yield c.done
            return v * 2

        p = eng.spawn(parent(), name="parent")
        eng.run()
        assert p.done.value == 42

    def test_deadlock_detected(self):
        eng = Engine()

        def prog():
            yield Future(name="never")

        eng.spawn(prog(), name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            eng.run()

    def test_unsupported_yield_raises(self):
        eng = Engine()

        def prog():
            yield "nonsense"

        eng.spawn(prog())
        with pytest.raises(SimulationError, match="unsupported"):
            eng.run()

    def test_many_processes_interleave_deterministically(self):
        def run_once():
            eng = Engine()
            order = []

            def prog(i):
                yield Delay(0.1 * (i % 3))
                order.append(i)
                yield Delay(0.05)
                order.append(i + 100)

            eng.spawn_all(prog(i) for i in range(10))
            eng.run()
            return order

        assert run_once() == run_once()


class TestCancellationAccounting:
    """pending_events is a live counter; cancellations compact the heap."""

    def test_pending_events_tracks_cancellations(self):
        eng = Engine()
        events = [eng.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert eng.pending_events == 10
        events[3].cancel()
        events[7].cancel()
        assert eng.pending_events == 8
        eng.run()
        assert eng.pending_events == 0

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ev = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        ev.cancel()
        assert eng.pending_events == 1

    def test_heap_compacts_when_cancellations_dominate(self):
        eng = Engine()
        events = [eng.schedule(float(i + 1), lambda: None) for i in range(100)]
        for ev in events[:60]:
            ev.cancel()
        # Crossing the half-cancelled mark compacts the queue, so dead
        # entries never dominate: at most half the remaining entries are
        # cancelled, and the live count stays exact.
        assert eng.pending_events == 40
        queued = eng._sorted[eng._i:] + eng._incoming
        assert len(queued) < 100
        dead = sum(1 for e in queued if e.cancelled)
        assert dead * 2 <= len(queued)
        assert len(queued) - dead == 40

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=50.0), st.booleans()),
                    min_size=0, max_size=200))
    def test_random_cancel_patterns(self, spec):
        eng = Engine()
        fired = []
        events = [
            eng.schedule(delay, lambda i=i: fired.append(i))
            for i, (delay, _cancel) in enumerate(spec)
        ]
        cancelled = {i for i, (_d, c) in enumerate(spec) if c}
        for i in cancelled:
            events[i].cancel()
        assert eng.pending_events == len(spec) - len(cancelled)
        eng.run()
        assert eng.pending_events == 0
        assert sorted(fired) == [i for i in range(len(spec)) if i not in cancelled]


class TestDeterminism:
    """Execution order is a pure function of the schedule calls.

    The fast path keeps a lazily sorted queue, an incoming buffer, and
    a ready deque for same-timestamp resumes; all three must merge into
    one global (time, priority, seq) order, identically on every run.
    """

    @staticmethod
    def _workload(eng):
        trace = []

        def mark(tag):
            return lambda: trace.append((tag, eng.now))

        events = [
            eng.schedule(float((i * 37) % 11) * 0.5, mark(i)) for i in range(200)
        ]
        for ev in events[::3]:
            ev.cancel()

        def chain(depth):
            trace.append(("chain", depth, eng.now))
            if depth:
                eng.schedule(0.0, lambda: chain(depth - 1))

        eng.schedule(2.25, lambda: chain(3))
        eng.run()
        return trace

    def test_run_twice_is_identical(self):
        assert self._workload(Engine()) == self._workload(Engine())

    def test_future_resume_interleaves_by_creation_order(self):
        """A process resumed at time t slots into the same-timestamp
        order exactly where a zero-delay schedule issued at resolution
        time would: after events created before the resolution, before
        events created after it."""
        eng = Engine()
        trace = []
        fut = Future()

        def waiter():
            yield fut
            trace.append("resumed")
            eng.schedule(0.0, lambda: trace.append("after-resume"))

        eng.spawn(waiter())

        def resolver():
            trace.append("resolve")
            fut.resolve(None)  # resume enqueued here: seq between peers
            eng.schedule(0.0, lambda: trace.append("post-resolve-event"))

        eng.schedule(1.0, resolver)
        eng.schedule(1.0, lambda: trace.append("pre-scheduled-peer"))
        eng.run()
        assert trace == [
            "resolve",
            "pre-scheduled-peer",
            "resumed",
            "post-resolve-event",
            "after-resume",
        ]
