"""The solver: stability, physics sanity, parallel == serial."""

import numpy as np
import pytest

from repro.data.synthetic import supernova_field
from repro.insitu.simulation import AdvectionDiffusionSim
from repro.render.decomposition import BlockDecomposition
from repro.render.ghost import ghost_exchange
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld

GRID = (12, 12, 12)


@pytest.fixture
def sim():
    return AdvectionDiffusionSim(GRID, omega=0.1, kappa=0.05)


@pytest.fixture
def field():
    return supernova_field(GRID, "density", seed=2)


class TestSerialSolver:
    def test_constant_field_is_fixed_point(self, sim):
        u = np.full(GRID, 0.7, dtype=np.float32)
        out = sim.run_serial(u, 5)
        assert np.allclose(out, 0.7, atol=1e-5)

    def test_bounded_by_maximum_principle(self, sim, field):
        """Upwind advection + diffusion cannot create new extrema."""
        out = sim.run_serial(field, 10)
        assert out.max() <= field.max() + 1e-4
        assert out.min() >= field.min() - 1e-4

    def test_diffusion_shrinks_variance(self, field):
        sim = AdvectionDiffusionSim(GRID, omega=0.0, kappa=0.1)
        out = sim.run_serial(field, 10)
        assert out.std() < field.std()

    def test_pure_advection_moves_structure(self, field):
        sim = AdvectionDiffusionSim(GRID, omega=0.2, kappa=0.0)
        out = sim.run_serial(field, 5)
        assert not np.allclose(out, field, atol=1e-3)

    def test_unstable_dt_rejected(self):
        with pytest.raises(ConfigError, match="unstable"):
            AdvectionDiffusionSim(GRID, omega=0.1, kappa=0.05, dt=100.0)

    def test_shape_mismatch_rejected(self, sim):
        with pytest.raises(ConfigError):
            sim.step_serial(np.zeros((4, 4, 4), np.float32))


class TestParallelSolver:
    @pytest.mark.parametrize("nblocks,block_grid", [(8, (2, 2, 2)), (4, (4, 1, 1)), (6, (1, 2, 3))])
    def test_matches_serial_exactly(self, sim, field, nblocks, block_grid):
        steps = 4
        serial = sim.run_serial(field, steps)
        dec = BlockDecomposition(GRID, nblocks, block_grid=block_grid)

        def program(ctx):
            b = dec.block(ctx.rank)
            sl = tuple(slice(s, s + c) for s, c in zip(b.start, b.count))
            u = np.ascontiguousarray(field[sl])
            for _ in range(steps):
                padded, gl = yield from ghost_exchange(ctx, u, dec, ghost=1)
                u = sim.step_padded(padded, gl, b.start, b.count)
            return u

        res = MPIWorld.for_cores(nblocks).run(program)
        assembled = np.empty(GRID, dtype=np.float32)
        for b, out in zip(dec.blocks(), res.values):
            sl = tuple(slice(s, s + c) for s, c in zip(b.start, b.count))
            assembled[sl] = out
        assert np.array_equal(assembled, serial), "parallel must equal serial bitwise"
