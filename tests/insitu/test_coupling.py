"""In-situ coupling: frames match post-hoc rendering, no I/O in loop."""

import numpy as np
import pytest

from repro.data.synthetic import supernova_field
from repro.insitu import AdvectionDiffusionSim, InSituPipeline
from repro.render import Camera, TransferFunction, render_volume_serial
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld

GRID = (12, 12, 12)
STEP = 0.8


@pytest.fixture
def setup():
    sim = AdvectionDiffusionSim(GRID, omega=0.1, kappa=0.04)
    cam = Camera.looking_at_volume(GRID, width=28, height=28)
    tf = TransferFunction.grayscale_ramp(0, 1.6)
    field = supernova_field(GRID, "density", seed=6)
    world = MPIWorld.for_cores(8)
    return sim, cam, tf, field, world


class TestInSitu:
    def test_frames_match_posthoc_render(self, setup):
        """The in-situ image of step k equals rendering the serial
        solver's step-k state after the fact."""
        sim, cam, tf, field, world = setup
        pipe = InSituPipeline(world, sim, cam, tf, step=STEP)
        result = pipe.run(field, steps=3, render_every=1)
        assert len(result.frames) == 3
        u = field
        for k, frame in enumerate(result.frames, start=1):
            u = sim.step_serial(u)
            ref = render_volume_serial(cam, u, tf, step=STEP)
            assert np.abs(frame - ref).max() < 5e-3, f"frame {k}"
        assert np.array_equal(result.final_field, u)

    def test_render_every_skips_frames(self, setup):
        sim, cam, tf, field, world = setup
        pipe = InSituPipeline(world, sim, cam, tf, step=STEP)
        result = pipe.run(field, steps=4, render_every=2)
        assert len(result.frames) == 2

    def test_no_io_stage(self, setup):
        sim, cam, tf, field, world = setup
        pipe = InSituPipeline(world, sim, cam, tf, step=STEP)
        result = pipe.run(field, steps=2, render_every=2)
        timing = pipe.frame_timing(result)
        assert timing.io_s == 0.0
        assert result.vis_seconds > 0
        assert result.sim_seconds > 0
        assert result.exchange_seconds > 0

    def test_invalid_args(self, setup):
        sim, cam, tf, field, world = setup
        pipe = InSituPipeline(world, sim, cam, tf, step=STEP)
        with pytest.raises(ConfigError):
            pipe.run(field, steps=0)
        with pytest.raises(ConfigError):
            pipe.run(np.zeros((4, 4, 4), np.float32), steps=1)
