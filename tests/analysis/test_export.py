"""JSON/CSV exports and the sweep helper."""

import json

import pytest

from repro.analysis.export import (
    estimate_to_dict,
    estimates_to_csv,
    estimates_to_json,
    sweep_cores,
)
from repro.model.pipeline import DATASETS, FrameModel
from repro.utils.errors import ConfigError


@pytest.fixture(scope="module")
def estimates():
    fm = FrameModel(DATASETS["1120"])
    return sweep_cores(fm, (64, 256, 1024))


class TestExport:
    def test_dict_fields(self, estimates):
        d = estimate_to_dict(estimates[0])
        assert d["dataset"] == "1120"
        assert d["cores"] == 64
        assert d["total_s"] == pytest.approx(
            d["io_s"] + d["render_s"] + d["composite_s"]
        )
        assert 0 <= d["pct_io"] <= 100

    def test_json_roundtrip(self, estimates):
        arr = json.loads(estimates_to_json(estimates))
        assert len(arr) == 3
        assert [e["cores"] for e in arr] == [64, 256, 1024]

    def test_csv_shape(self, estimates):
        csv = estimates_to_csv(estimates)
        lines = csv.strip().splitlines()
        assert len(lines) == 4
        header = lines[0].split(",")
        assert "total_s" in header
        assert all(len(ln.split(",")) == len(header) for ln in lines[1:])

    def test_csv_empty_rejected(self):
        with pytest.raises(ConfigError):
            estimates_to_csv([])

    def test_sweep_monotone_render(self, estimates):
        renders = [e.render.seconds for e in estimates]
        assert renders == sorted(renders, reverse=True)
