"""I/O signature analysis."""

import numpy as np
import pytest

from repro.analysis.signature import ServerLoadProfile, server_load_profile
from repro.model.pipeline import DATASETS, FrameModel
from repro.pio.hints import IOHints
from repro.pio.twophase import plan_two_phase
from repro.storage.stripedfs import StorageSystem, StripeConfig
from repro.utils.errors import ConfigError


class TestServerLoadProfile:
    def test_contiguous_read_balances(self):
        """A big contiguous read spreads evenly (round-robin striping)."""
        stripe = StripeConfig(stripe_size=1024, num_servers=8)
        plan = plan_two_phase([(0, 1024 * 800)], IOHints(cb_buffer_size=4096, cb_nodes=4))
        prof = server_load_profile(plan, stripe)
        assert prof.total_bytes == plan.physical_bytes
        assert prof.servers_used == 8
        assert prof.imbalance < 1.05

    def test_strided_pattern_can_hotspot(self):
        """Accesses at a stride matching the striping pile onto few servers."""
        stripe = StripeConfig(stripe_size=1024, num_servers=8)
        # One stripe every full rotation -> always server 0.
        needed = [(i * 1024 * 8, 512) for i in range(64)]
        plan = plan_two_phase(needed, IOHints(cb_buffer_size=512, cb_nodes=1))
        prof = server_load_profile(plan, stripe)
        assert prof.servers_used == 1
        assert prof.effective_parallelism == pytest.approx(1.0)

    def test_empty_plan(self):
        plan = plan_two_phase([], IOHints())
        prof = server_load_profile(plan)
        assert prof.total_bytes == 0
        assert prof.imbalance == 1.0

    def test_per_san_rollup(self):
        plan = plan_two_phase([(0, 10 * 4 << 20)], IOHints(cb_nodes=2))
        prof = server_load_profile(plan)
        sans = prof.per_san_bytes()
        assert sans.shape == (17,)
        assert sans.sum() == prof.total_bytes

    def test_per_san_mismatch_rejected(self):
        prof = ServerLoadProfile(np.zeros(8, dtype=np.int64), StripeConfig(num_servers=8))
        with pytest.raises(ConfigError):
            prof.per_san_bytes(StorageSystem())

    def test_render_has_bars(self):
        plan = plan_two_phase([(0, 200 << 20)], IOHints(cb_nodes=4))
        text = server_load_profile(plan).render()
        assert "SAN  0" in text and "#" in text


class TestPaperScaleSignatures:
    def test_all_modes_touch_every_server(self):
        """The 1120^3 reads stripe wide enough to engage all 136 servers."""
        fm = FrameModel(DATASETS["1120"])
        for mode in ("raw", "netcdf", "netcdf-tuned"):
            plan = fm.io_report(mode, 2048).plan
            prof = server_load_profile(plan)
            assert prof.servers_used == 136, mode
            assert prof.imbalance < 1.6, mode

    def test_untuned_moves_more_per_server(self):
        fm = FrameModel(DATASETS["1120"])
        raw = server_load_profile(fm.io_report("raw", 2048).plan)
        untuned = server_load_profile(fm.io_report("netcdf", 2048).plan)
        assert untuned.total_bytes > 3 * raw.total_bytes
