"""ASCII plots."""

import pytest

from repro.analysis.asciiplot import ascii_bars, ascii_loglog
from repro.utils.errors import ConfigError


class TestLogLog:
    def test_renders_all_series(self):
        out = ascii_loglog(
            {"total": ([64, 128, 256], [100, 50, 25]), "io": ([64, 128, 256], [15, 15, 15])},
            width=40,
            height=10,
        )
        assert "o = total" in out
        assert "x = io" in out
        assert out.count("\n") >= 10

    def test_marks_present(self):
        out = ascii_loglog({"a": ([1, 10, 100], [1, 10, 100])}, width=30, height=8)
        assert "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ascii_loglog({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            ascii_loglog({"a": ([0, 1], [1, 2])})

    def test_axis_labels(self):
        out = ascii_loglog({"a": ([1, 2], [3, 4])}, xlabel="cores", ylabel="seconds")
        assert "cores" in out and "seconds" in out


class TestBars:
    def test_scaled_to_peak(self):
        out = ascii_bars([("raw", 10.0), ("netcdf", 40.0)], width=20)
        lines = out.splitlines()
        assert lines[1].count("#") == 20
        assert lines[0].count("#") == 5

    def test_labels_aligned(self):
        out = ascii_bars([("a", 1.0), ("longer", 2.0)])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ascii_bars([])
