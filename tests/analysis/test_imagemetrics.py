"""Image metrics."""

import numpy as np
import pytest

from repro.analysis.imagemetrics import (
    coverage,
    coverage_agreement,
    max_abs_error,
    mean_abs_error,
    psnr,
    similarity_report,
)
from repro.utils.errors import ConfigError


def canvas(value=0.0, shape=(8, 8)):
    return np.full(shape + (4,), value, dtype=np.float32)


class TestMetrics:
    def test_identical_images(self):
        a = canvas(0.5)
        assert mean_abs_error(a, a) == 0.0
        assert max_abs_error(a, a) == 0.0
        assert psnr(a, a) == float("inf")
        assert coverage_agreement(a, a) == 1.0

    def test_known_difference(self):
        a = canvas(0.0)
        b = canvas(0.5)
        assert mean_abs_error(a, b) == pytest.approx(0.5)
        assert max_abs_error(a, b) == pytest.approx(0.5)
        assert psnr(a, b) == pytest.approx(10 * np.log10(1 / 0.25))

    def test_psnr_orders_by_fidelity(self, rng):
        ref = rng.random((8, 8, 4))
        close = ref + 0.01
        far = ref + 0.2
        assert psnr(ref, close) > psnr(ref, far)

    def test_coverage(self):
        img = canvas(0.0)
        img[:4, :, 3] = 1.0
        assert coverage(img) == pytest.approx(0.5)

    def test_coverage_agreement_disjoint(self):
        a = canvas(0.0)
        b = canvas(0.0)
        a[:4, :, 3] = 1.0
        b[4:, :, 3] = 1.0
        assert coverage_agreement(a, b) == 0.0

    def test_coverage_agreement_empty_is_perfect(self):
        assert coverage_agreement(canvas(), canvas()) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            mean_abs_error(canvas(), canvas(shape=(4, 4)))
        with pytest.raises(ConfigError):
            coverage(np.zeros((4, 4, 3)))

    def test_report_renders(self):
        text = similarity_report(canvas(0.1), canvas(0.1))
        assert "PSNR" in text and "MAE" in text


class TestOnRealRenders:
    def test_upsampled_render_measurably_similar(self):
        """Sec. IV-B's 'resulting images are similar' claim, measured."""
        from repro.data import SupernovaModel
        from repro.data.upsample import upsample_trilinear
        from repro.render import Camera, TransferFunction, render_volume_serial

        model = SupernovaModel((16, 16, 16), seed=12)
        data = model.field("vx")
        up = upsample_trilinear(data, 2)
        tf = TransferFunction.supernova(*model.value_range("vx"))
        img_lo = render_volume_serial(
            Camera.looking_at_volume(data.shape, width=32, height=32), data, tf, step=0.5
        )
        img_hi = render_volume_serial(
            Camera.looking_at_volume(up.shape, width=32, height=32), up, tf, step=1.0
        )
        # Near-identical silhouettes; per-pixel values drift slightly
        # (the upsampled grid samples at rescaled positions).
        assert coverage_agreement(img_lo, img_hi) > 0.9
        assert mean_abs_error(img_lo, img_hi) < 0.15
