"""Report formatters."""

from repro.analysis.reports import (
    PUBLISHED_SCALES_TABLE1,
    fig3_rows,
    format_table,
    table2_rows,
    time_distribution_rows,
)
from repro.model.pipeline import DATASETS, FrameModel


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert lines[1].startswith("-")
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_floats_rounded(self):
        out = format_table(["x"], [[3.14159]])
        assert "3.14" in out


class TestPaperTables:
    def test_table1_includes_this_work(self):
        assert any("this work" in row[0] for row in PUBLISHED_SCALES_TABLE1)
        # 90 billion elements at 32K cores, the paper's claim to scale.
        ours = [r for r in PUBLISHED_SCALES_TABLE1 if "this work" in r[0]][0]
        assert ours[1] == 32768 and ours[2] == 90.0

    def test_fig3_rows_render(self):
        fm = FrameModel(DATASETS["1120"])
        est = {c: (fm.estimate(c), fm.estimate_original(c)) for c in (64, 256)}
        out = fig3_rows(est)
        assert "cores" in out and "64" in out and "256" in out

    def test_table2_rows_render(self):
        fm = FrameModel(DATASETS["2240"])
        out = table2_rows([fm.estimate(8192)])
        assert "2240^3" in out and "% I/O" in out

    def test_time_distribution_stacked(self):
        fm = FrameModel(DATASETS["1120"])
        est = {c: fm.estimate(c) for c in (64, 8192)}
        out = time_distribution_rows(est, width=20)
        lines = out.splitlines()
        assert "I" in lines[1] and "R" in lines[1]
        # I/O fraction grows with core count (Fig. 6).
        assert lines[2].count("I") > lines[1].count("I")
