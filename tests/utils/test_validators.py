"""Argument validators and the error hierarchy."""

import pytest

from repro.utils.errors import (
    CommunicationError,
    ConfigError,
    DeadlockError,
    FormatError,
    ReproError,
    SimulationError,
    StorageError,
)
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_shape3,
    is_power_of_two,
)


class TestValidators:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(32768)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(3)
        assert not is_power_of_two(2.0)  # floats are not ints

    def test_check_positive(self):
        check_positive("x", 1e-9)
        with pytest.raises(ConfigError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ConfigError):
            check_non_negative("x", -1)

    def test_check_power_of_two(self):
        check_power_of_two("p", 64)
        with pytest.raises(ConfigError, match="power of two"):
            check_power_of_two("p", 48)

    def test_check_shape3(self):
        assert check_shape3("s", [4, 5, 6]) == (4, 5, 6)
        assert check_shape3("s", (1.0, 2.0, 3.0)) == (1, 2, 3)
        with pytest.raises(ConfigError):
            check_shape3("s", (1, 2))
        with pytest.raises(ConfigError):
            check_shape3("s", (1, 0, 2))
        with pytest.raises(ConfigError):
            check_shape3("s", "abc")


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigError, SimulationError, FormatError, StorageError, CommunicationError):
            assert issubclass(exc, ReproError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)

    def test_deadlock_message_truncates(self):
        err = DeadlockError([f"rank{i}" for i in range(20)])
        assert "rank0" in str(err)
        assert "20 total" in str(err)
        assert "rank15" not in str(err)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise FormatError("bad file")
