"""The unified RNG substream derivation (repro.utils.rng)."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.utils.rng import substream, substream_key


class TestSubstreamKey:
    def test_matches_historical_farm_derivation(self):
        # The farm workload generators seeded their streams with
        # (seed << 32) ^ crc32("seed:name:stream") before the helper
        # existed; the helper must reproduce that bit for bit so every
        # committed farm baseline stays valid.
        seed, name, stream = 1530, "browse0", "arrivals"
        legacy = (seed << 32) ^ zlib.crc32(f"{seed}:{name}:{stream}".encode())
        assert substream_key(seed, name, stream) == legacy

    def test_label_order_matters(self):
        assert substream_key(1, "a", "b") != substream_key(1, "b", "a")

    def test_distinct_seeds_distinct_keys(self):
        keys = {substream_key(s, "fault", "crash") for s in range(64)}
        assert len(keys) == 64

    def test_non_string_labels_coerced(self):
        assert substream_key(3, 7, "x") == substream_key(3, "7", "x")


class TestSubstream:
    def test_deterministic(self):
        a = substream(9, "fault", "drop").random(8)
        b = substream(9, "fault", "drop").random(8)
        assert np.array_equal(a, b)

    def test_streams_are_independent(self):
        a = substream(9, "fault", "drop").random(8)
        b = substream(9, "fault", "dup").random(8)
        assert not np.array_equal(a, b)

    def test_returns_generator(self):
        assert isinstance(substream(0, "x"), np.random.Generator)


class TestFarmAdoption:
    def test_workload_uses_substream(self):
        # SessionSpec interarrivals must still come from the shared
        # derivation (the adoption refactor must not have changed the
        # draws).
        from repro.farm.workload import SessionSpec

        spec = SessionSpec(name="s0", kind="browse", arrival="open",
                           requests=5, rate_hz=1.0)
        gaps = spec.interarrivals(42)
        expected = substream(42, "s0", "arrive").exponential(1.0, size=5)
        assert gaps == pytest.approx(expected)
