"""Units and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    GB,
    GIB,
    KIB,
    MIB,
    fmt_bandwidth,
    fmt_bytes,
    fmt_time,
    parse_bytes,
)


class TestFormatting:
    def test_fmt_bytes_units(self):
        assert fmt_bytes(0) == "0 B"
        assert fmt_bytes(999) == "999 B"
        assert fmt_bytes(5_300_000_000) == "5.30 GB"
        assert fmt_bytes(4.3e15) == "4300.00 TB"

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-2_000_000) == "-2.00 MB"

    def test_fmt_time_scales(self):
        assert fmt_time(5.9) == "5.900 s"
        assert fmt_time(0.0032) == "3.200 ms"
        assert fmt_time(5e-6) == "5.000 us"
        assert fmt_time(211) == "3m 31.0s"

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(1.3e9) == "1.30 GB/s"


class TestParseBytes:
    def test_suffixes(self):
        assert parse_bytes("4 MiB") == 4 * MIB
        assert parse_bytes("512k") == 512_000
        assert parse_bytes("2GiB") == 2 * GIB
        assert parse_bytes("1.5 GB") == int(1.5 * GB)
        assert parse_bytes("100") == 100

    def test_numbers_pass_through(self):
        assert parse_bytes(1024) == 1024
        assert parse_bytes(10.6) == 11

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_bytes("")
        with pytest.raises(ValueError):
            parse_bytes("12 parsecs")
        with pytest.raises(ValueError):
            parse_bytes("MiB")

    @given(st.integers(min_value=0, max_value=10**15))
    def test_roundtrip_plain_integers(self, n):
        assert parse_bytes(str(n)) == n

    def test_kib_vs_kb(self):
        assert parse_bytes("1KiB") == KIB
        assert parse_bytes("1KB") == 1000
