"""Frame model: the paper's headline shapes, asserted."""

import pytest

from repro.model.pipeline import DATASETS, IO_MODES, FrameModel, PaperDataset
from repro.utils.errors import ConfigError


@pytest.fixture(scope="module")
def fm():
    return FrameModel(DATASETS["1120"])


class TestDatasets:
    def test_paper_grid_image_pairs(self):
        assert DATASETS["1120"].image == 1600
        assert DATASETS["2240"].image == 2048
        assert DATASETS["4480"].image == 4096

    def test_sizes_match_paper(self):
        # "in raw mode our file size is over 5 GB per variable"
        assert DATASETS["1120"].volume_bytes == pytest.approx(5.6e9, rel=0.05)
        # "in netCDF mode the size is 27 GB"
        assert DATASETS["1120"].netcdf_bytes == pytest.approx(28.1e9, rel=0.05)
        # Table II: 42 GB and 335 GB time steps
        assert DATASETS["2240"].volume_bytes == pytest.approx(45e9, rel=0.08)
        assert DATASETS["4480"].volume_bytes == pytest.approx(360e9, rel=0.08)

    def test_element_counts(self):
        # ~1.4, ~11, ~90 billion elements.
        assert DATASETS["1120"].grid**3 == pytest.approx(1.4e9, rel=0.05)
        assert DATASETS["2240"].grid**3 == pytest.approx(11.2e9, rel=0.05)
        assert DATASETS["4480"].grid**3 == pytest.approx(90e9, rel=0.02)


class TestFig3Shapes:
    def test_best_total_at_16k(self, fm):
        """"The best all-inclusive frame time of 5.9 s was achieved with
        16K cores.\""""
        totals = {c: fm.estimate(c).total_s for c in (4096, 8192, 16384, 32768)}
        best = min(totals, key=totals.get)
        assert best == 16384
        assert 4.5 < totals[16384] < 8.0  # near the paper's 5.9 s

    def test_vis_only_time_near_paper(self, fm):
        """"our visualization-only time (rendering + compositing) is 0.6 s"."""
        e = fm.estimate(16384)
        assert 0.3 < e.vis_only_s < 0.9

    def test_total_decreases_from_64_to_16k(self, fm):
        totals = [fm.estimate(c).total_s for c in (64, 256, 1024, 4096, 16384)]
        assert totals == sorted(totals, reverse=True)

    def test_render_curve_linear(self, fm):
        r = [fm.render_stage(c).seconds for c in (64, 128, 256)]
        assert r[0] / r[1] == pytest.approx(2.0, rel=0.01)
        assert r[1] / r[2] == pytest.approx(2.0, rel=0.01)


class TestFig5And6Shapes:
    def test_larger_problems_take_longer(self):
        at_8k = [FrameModel(DATASETS[n]).estimate(8192).total_s for n in ("1120", "2240", "4480")]
        assert at_8k[0] < at_8k[1] < at_8k[2]

    def test_any_size_feasible_at_2k_cores(self):
        """Fig. 5: "even at 2K or 4K cores, any of the problem sizes can
        be visualized, given enough time.\""""
        for name in DATASETS:
            est = FrameModel(DATASETS[name]).estimate(2048)
            assert est.total_s < 3600

    def test_io_fraction_grows_with_cores(self, fm):
        """Fig. 6: I/O's share grows as render shrinks."""
        pct = [fm.estimate(c).pct_io for c in (64, 1024, 16384)]
        assert pct[0] < pct[1] < pct[2]
        assert pct[2] > 85

    def test_io_dominates_at_scale(self, fm):
        e = fm.estimate(8192)
        assert e.pct_io > e.pct_render + e.pct_composite


class TestTable2Shapes:
    @pytest.mark.parametrize("name,total_lo,total_hi", [("2240", 20, 80), ("4480", 150, 450)])
    def test_totals_in_paper_band(self, name, total_lo, total_hi):
        fm = FrameModel(DATASETS[name])
        for cores in (8192, 16384, 32768):
            t = fm.estimate(cores).total_s
            assert total_lo < t < total_hi, (name, cores, t)

    def test_io_percentage_like_paper(self):
        """Table II: ~96% of frame time is I/O at large sizes."""
        for name in ("2240", "4480"):
            fm = FrameModel(DATASETS[name])
            for cores in (8192, 16384, 32768):
                assert fm.estimate(cores).pct_io > 88

    def test_composite_percentage_small(self):
        for name in ("2240", "4480"):
            fm = FrameModel(DATASETS[name])
            assert fm.estimate(32768).pct_composite < 5


class TestConfigHandling:
    def test_unknown_io_mode_rejected(self, fm):
        with pytest.raises(ConfigError, match="unknown io mode"):
            fm.io_report("parquet", 64)

    def test_all_io_modes_work(self, fm):
        for mode in IO_MODES:
            st = fm.io_stage(mode, 256)
            assert st.seconds > 0

    def test_custom_dataset(self):
        d = PaperDataset("tiny", 64, 128)
        fm = FrameModel(d)
        e = fm.estimate(64)
        assert e.total_s > 0


class TestMachineCost:
    def test_core_seconds_grow_with_partition(self, fm):
        """The Fig. 5 remark, quantified: past the render-bound regime
        the machine cost per frame rises steeply with partition size."""
        costs = {c: fm.estimate(c).core_seconds for c in (512, 2048, 16384, 32768)}
        assert costs[2048] < costs[16384] < costs[32768]
        # At 32K the frame costs ~9x the core-seconds of the 2K run.
        assert costs[32768] > 8 * costs[2048]

    def test_small_partitions_render_bound_cost_flat(self, fm):
        """While rendering dominates, doubling cores is nearly free in
        core-seconds (the work is the same, just spread out)."""
        c64 = fm.estimate(64).core_seconds
        c128 = fm.estimate(128).core_seconds
        assert c128 < 1.5 * c64
