"""In-core memory feasibility (the paper's 80 TB argument)."""

import pytest

from repro.model.memory import frame_memory, min_cores_in_core
from repro.model.pipeline import DATASETS, PaperDataset
from repro.utils.errors import ConfigError


class TestFrameMemory:
    def test_1120_fits_everywhere_in_sweep(self):
        """The paper ran 1120^3 from 64 cores up — it must fit at 64."""
        est = frame_memory(DATASETS["1120"], 64)
        assert est.fits, str(est)

    def test_4480_needs_thousands_of_cores(self):
        """The paper ran 4480^3 only at 8K+; far smaller counts cannot
        hold 90 billion elements in 2 GB nodes."""
        assert not frame_memory(DATASETS["4480"], 256).fits
        assert frame_memory(DATASETS["4480"], 8192).fits

    def test_min_cores_ordering(self):
        mins = {name: min_cores_in_core(DATASETS[name]) for name in DATASETS}
        assert mins["1120"] <= mins["2240"] <= mins["4480"]
        assert mins["4480"] >= 1024

    def test_memory_shrinks_with_cores(self):
        d = DATASETS["2240"]
        a = frame_memory(d, 2048).total_bytes
        b = frame_memory(d, 16384).total_bytes
        assert b < a

    def test_smp_mode_quadruples_budget(self):
        d = DATASETS["4480"]
        vn = frame_memory(d, 4096, processes_per_node=4)
        smp = frame_memory(d, 4096, processes_per_node=1)
        assert smp.budget_bytes == 4 * vn.budget_bytes

    def test_str_verdict(self):
        assert "fits" in str(frame_memory(DATASETS["1120"], 1024))
        bad = frame_memory(DATASETS["4480"], 256)
        assert "DOES NOT FIT" in str(bad)

    def test_never_fitting_dataset_raises(self):
        monster = PaperDataset("monster", 40000, 4096)
        with pytest.raises(ConfigError, match="does not fit"):
            min_cores_in_core(monster)

    def test_invalid_cores(self):
        with pytest.raises(ConfigError):
            frame_memory(DATASETS["1120"], 0)
