"""Composite model: vectorized schedule vs the functional one, and the
contention behaviours behind Figs. 3-4."""

import numpy as np
import pytest

from repro.compositing.policy import IDENTITY_POLICY, PAPER_POLICY
from repro.compositing.schedule import schedule_from_geometry
from repro.model.composite import (
    CompositeTimeModel,
    block_footprints,
    vectorized_schedule_stats,
)
from repro.model.pipeline import DATASETS, FrameModel
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition


class TestVectorizedScheduleConsistency:
    @pytest.mark.parametrize("n,m", [(8, 8), (27, 27), (27, 9), (64, 16)])
    def test_matches_functional_schedule(self, n, m):
        """The NumPy schedule and the object schedule are the same thing."""
        grid = (32, 32, 32)
        cam = Camera.looking_at_volume(grid, width=96, height=96)
        dec = BlockDecomposition(grid, n)
        functional = schedule_from_geometry(dec, cam, m)
        vectorized = vectorized_schedule_stats(dec, cam, m)
        assert vectorized.total_messages == functional.total_messages
        assert vectorized.total_bytes == functional.total_bytes
        # Per-source message multisets agree.
        f_by_src = np.bincount([msg.src for msg in functional.messages], minlength=n)
        v_by_src = np.bincount(vectorized.src_block, minlength=n)
        assert np.array_equal(f_by_src, v_by_src)

    def test_footprints_match_camera(self):
        grid = (16, 16, 16)
        cam = Camera.looking_at_volume(grid, width=64, height=48)
        dec = BlockDecomposition(grid, 8)
        rects = block_footprints(dec, cam)
        for b in dec.blocks():
            z, y, x = b.start
            lo = np.array([x, y, z], dtype=float)
            hi = np.array(
                [
                    min(x + b.count[2], 15),
                    min(y + b.count[1], 15),
                    min(z + b.count[0], 15),
                ],
                dtype=float,
            )
            expected = cam.footprint(lo, hi)
            x0, y0, x1, y1 = rects[b.index]
            assert expected == (x0, y0, x1 - x0, y1 - y0)


class TestContentionBehaviours:
    @pytest.fixture(scope="class")
    def fm(self):
        return FrameModel(DATASETS["1120"])

    def test_original_flat_through_1k(self, fm):
        times = [fm.composite_stage(c, IDENTITY_POLICY).seconds for c in (64, 256, 1024)]
        assert max(times) < 2.5 * min(times)
        assert max(times) < 0.3

    def test_original_blows_up_beyond_8k(self, fm):
        """Fig. 3: beyond 8K the compositing time exceeds rendering."""
        c16 = fm.composite_stage(16384, IDENTITY_POLICY).seconds
        r16 = fm.render_stage(16384).seconds
        assert c16 > r16
        c8 = fm.composite_stage(8192, IDENTITY_POLICY).seconds
        r8 = fm.render_stage(8192).seconds
        assert c8 < 1.2 * r8  # at 8K they are comparable, not yet blown up

    def test_improvement_factor_at_32k(self, fm):
        """~30x faster compositing with 2K compositors at 32K cores."""
        orig = fm.composite_stage(32768, IDENTITY_POLICY).seconds
        improved = fm.composite_stage(32768, PAPER_POLICY).seconds
        assert 15 < orig / improved < 60

    def test_frame_reduction_around_24pct(self, fm):
        e = fm.estimate(32768)
        o = fm.estimate_original(32768)
        reduction = 1 - e.total_s / o.total_s
        assert 0.12 < reduction < 0.35

    def test_improved_stays_subsecond_everywhere(self, fm):
        for cores in (1024, 4096, 16384, 32768):
            assert fm.composite_stage(cores, PAPER_POLICY).seconds < 0.5

    def test_message_size_shrinks_with_cores(self, fm):
        """Fig. 4's x-axis pairing: more processors, smaller messages."""
        s1 = fm.composite_stage(1024, IDENTITY_POLICY).mean_message_bytes
        s32 = fm.composite_stage(32768, IDENTITY_POLICY).mean_message_bytes
        assert s32 < s1 / 8

    def test_achieved_bandwidth_falls_off_peak(self, fm):
        """Fig. 4: original scheme's bandwidth collapses at scale."""
        small = fm.composite_stage(1024, IDENTITY_POLICY)
        big = fm.composite_stage(32768, IDENTITY_POLICY)
        assert big.achieved_bandwidth_Bps < small.achieved_bandwidth_Bps

    def test_empty_schedule_priced_as_setup(self):
        m = CompositeTimeModel()
        from repro.model.composite import ScheduleStats

        stats = ScheduleStats(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64), 4, 2
        )
        assert m.price(stats).seconds == m.c.setup_s


class TestStripsConsistency:
    def test_strips_vectorized_matches_functional(self):
        """The strips tile mode agrees between the two schedule builders."""
        grid = (32, 32, 32)
        cam = Camera.looking_at_volume(grid, width=96, height=96)
        dec = BlockDecomposition(grid, 27)
        functional = schedule_from_geometry(dec, cam, 9, strips=True)
        vectorized = vectorized_schedule_stats(dec, cam, 9, strips=True)
        assert vectorized.total_messages == functional.total_messages
        assert vectorized.total_bytes == functional.total_bytes
