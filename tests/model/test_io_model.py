"""I/O time model: the bandwidth law and its paper-anchored behaviours."""

import pytest

from repro.machine.partition import Partition
from repro.model.constants import DEFAULT_CONSTANTS
from repro.model.io import IOTimeModel
from repro.model.pipeline import DATASETS, FrameModel
from repro.utils.errors import ConfigError


@pytest.fixture(scope="module")
def fm():
    return FrameModel(DATASETS["1120"])


class TestBandwidthLaw:
    def test_more_aggregators_more_bandwidth(self):
        m = IOTimeModel()
        bw = [m.aggregate_bandwidth(16e6, 1e6, naggs, 30_000_000_000) for naggs in (1, 8, 64)]
        assert bw[0] < bw[1] < bw[2]

    def test_larger_accesses_more_bandwidth(self):
        m = IOTimeModel()
        assert m.aggregate_bandwidth(16e6, 1e6, 8, 3e10) > m.aggregate_bandwidth(64e3, 1e6, 8, 3e10)

    def test_tiny_requests_per_proc_hurt(self):
        m = IOTimeModel()
        assert m.aggregate_bandwidth(16e6, 10e6, 8, 3e10) > m.aggregate_bandwidth(16e6, 50e3, 8, 3e10)

    def test_zero_aggregators_rejected(self):
        with pytest.raises(ConfigError):
            IOTimeModel().aggregate_bandwidth(16e6, 1e6, 0, 1e9)

    def test_default_aggregators_one_per_ion(self):
        m = IOTimeModel()
        assert m.default_aggregators(Partition.for_cores(32768)) == 128
        assert m.default_aggregators(Partition.for_cores(64)) == 1


class TestPaperAnchors:
    """Loose brackets around the paper's measured I/O numbers."""

    def test_raw_64_cores_around_350MBs(self, fm):
        st = fm.io_stage("raw", 64)
        assert 0.2e9 < st.effective_bw_Bps < 0.6e9

    def test_raw_16k_cores_around_1GBs(self, fm):
        st = fm.io_stage("raw", 16384)
        assert 0.7e9 < st.effective_bw_Bps < 1.4e9

    def test_raw_bandwidth_grows_with_cores(self, fm):
        bws = [fm.io_stage("raw", c).effective_bw_Bps for c in (64, 1024, 16384)]
        assert bws[0] < bws[1] < bws[2]

    def test_untuned_netcdf_4_to_5x_slower_at_low_cores(self, fm):
        raw = fm.io_stage("raw", 64).seconds
        untuned = fm.io_stage("netcdf", 64).seconds
        assert 3.0 < untuned / raw < 6.5

    def test_tuning_roughly_doubles_netcdf(self, fm):
        untuned = fm.io_stage("netcdf", 1024).seconds
        tuned = fm.io_stage("netcdf-tuned", 1024).seconds
        assert 1.5 < untuned / tuned < 4.0

    def test_density_ordering_of_the_five_modes(self, fm):
        """Fig. 10: raw >= {netcdf64, h5lite} > tuned > untuned."""
        d = {mode: fm.io_stage(mode, 2048).density for mode in
             ("raw", "netcdf64", "h5lite", "netcdf-tuned", "netcdf")}
        assert d["raw"] >= d["netcdf64"] >= d["h5lite"] * 0.99
        assert d["netcdf64"] > d["netcdf-tuned"] > d["netcdf"]

    def test_time_anticorrelates_with_density(self, fm):
        """Fig. 10's headline: strong correlation of time and density."""
        modes = ("raw", "netcdf64", "h5lite", "netcdf-tuned", "netcdf")
        stages = [fm.io_stage(m, 2048) for m in modes]
        by_density = sorted(stages, key=lambda s: -s.density)
        times = [s.seconds for s in by_density]
        assert times == sorted(times)

    def test_meta_cost_scales_with_procs(self, fm):
        small = fm.io_stage("h5lite", 64)
        large = fm.io_stage("h5lite", 32768)
        assert large.meta_seconds > small.meta_seconds

    def test_empty_report_free(self):
        from repro.pio.hints import IOHints
        from repro.pio.reader import IOReport
        from repro.pio.twophase import TwoPhasePlan

        report = IOReport(TwoPhasePlan([], 0, 1, IOHints()), 0, 0, 0, 4, 100)
        st = IOTimeModel().price(report, Partition.for_cores(64))
        assert st.seconds == 0.0


class TestUpsampledDatasets:
    def test_table2_bandwidth_range(self):
        """Read bandwidths land in the paper's 0.8-2.2 GB/s envelope."""
        for name in ("2240", "4480"):
            fm = FrameModel(DATASETS[name])
            for cores in (8192, 16384, 32768):
                bw = fm.estimate(cores).read_bw_Bps
                assert 0.8e9 < bw < 2.2e9, (name, cores, bw)

    def test_bandwidth_grows_with_cores_table2(self):
        for name in ("2240", "4480"):
            fm = FrameModel(DATASETS[name])
            bws = [fm.estimate(c).read_bw_Bps for c in (8192, 16384, 32768)]
            assert bws[0] < bws[1] < bws[2]
