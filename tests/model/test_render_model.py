"""Rendering time model."""

import pytest

from repro.model.render import RenderTimeModel
from repro.utils.errors import ConfigError


class TestRenderModel:
    def test_linear_scaling(self):
        """Rendering is embarrassingly parallel: double cores, half time."""
        m = RenderTimeModel()
        t1 = m.price((1120, 1120, 1120), 1600, 1600, 8192).seconds
        t2 = m.price((1120, 1120, 1120), 1600, 1600, 16384).seconds
        assert t1 == pytest.approx(2 * t2)

    def test_16k_cores_visualization_anchor(self):
        """Sec. IV-A: visualization-only time ~0.6 s at 16K cores;
        rendering is most of it."""
        m = RenderTimeModel()
        t = m.price((1120, 1120, 1120), 1600, 1600, 16384).seconds
        assert 0.3 < t < 0.8

    def test_samples_scale_with_image_and_depth(self):
        m = RenderTimeModel()
        base = m.total_samples((100, 100, 100), 100, 100)
        assert m.total_samples((100, 100, 100), 200, 200) == pytest.approx(4 * base)
        assert m.total_samples((200, 200, 200), 100, 100) == pytest.approx(2 * base)

    def test_finer_step_more_samples(self):
        m = RenderTimeModel()
        assert m.total_samples((64,) * 3, 64, 64, step=0.5) == pytest.approx(
            2 * m.total_samples((64,) * 3, 64, 64, step=1.0)
        )

    def test_invalid_args(self):
        m = RenderTimeModel()
        with pytest.raises(ConfigError):
            m.price((64,) * 3, 64, 64, 0)
        with pytest.raises(ConfigError):
            m.total_samples((64,) * 3, 0, 64)
        with pytest.raises(ConfigError):
            m.total_samples((64,) * 3, 64, 64, step=-1)

    def test_imbalance_inflates(self):
        m = RenderTimeModel()
        r = m.price((64,) * 3, 64, 64, 8)
        ideal = r.samples_per_proc / m.c.samples_per_second_per_core
        assert r.seconds > ideal
