"""The fidelity scorecard: calibration must stay anchored to the paper."""

import pytest

from repro.model.validation import fidelity_report


@pytest.fixture(scope="module")
def report():
    return fidelity_report()


class TestFidelity:
    def test_every_anchor_within_factor_2(self, report):
        bad = [a for a in report.anchors if a.log2_error > 1.0]
        assert not bad, "anchors off by >2x: " + ", ".join(
            f"{a.name} ({a.ratio:.2f}x)" for a in bad
        )

    def test_mean_error_tight(self, report):
        # On average the model lands within ~35% of the paper.
        assert report.mean_log2_error < 0.45, report.table()

    def test_headline_anchors_tighter(self, report):
        by_name = {a.name: a for a in report.anchors}
        assert by_name["best frame time at 16K (s)"].log2_error < 0.25
        assert by_name["composite improvement at 32K (x)"].log2_error < 0.35
        assert by_name["tuned physical bytes (GB)"].log2_error < 0.5

    def test_report_table_renders(self, report):
        text = report.table()
        assert "anchor" in text and "ratio" in text
        assert len(text.splitlines()) == len(report.anchors) + 2

    def test_coverage(self, report):
        assert len(report.anchors) >= 15
        assert report.within_factor_2 == 1.0
