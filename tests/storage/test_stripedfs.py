"""Striping model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.store import MemoryStore
from repro.storage.stripedfs import StorageSystem, StripeConfig, StripedFile


class TestStripeConfig:
    def test_server_rotation(self):
        c = StripeConfig(stripe_size=100, num_servers=4)
        assert c.server_of(0) == 0
        assert c.server_of(99) == 0
        assert c.server_of(100) == 1
        assert c.server_of(400) == 0  # wraps

    def test_vectorized_matches_scalar(self):
        c = StripeConfig(stripe_size=64, num_servers=7)
        offs = np.arange(0, 5000, 37)
        vec = c.server_of(offs)
        for o, s in zip(offs, vec):
            assert c.server_of(int(o)) == s


class TestStorageSystem:
    def test_paper_inventory(self):
        s = StorageSystem()
        assert s.num_servers == 136  # 17 SANs x 8 servers
        assert s.capacity_bytes == pytest.approx(4.3e15)  # 4.3 PB
        assert s.peak_aggregate_Bps == pytest.approx(17 * 5.5e9)

    def test_describe_mentions_sans(self):
        assert "17 SANs" in StorageSystem().describe()

    def test_san_of_server(self):
        s = StorageSystem()
        assert s.san_of_server(0) == 0
        assert s.san_of_server(8) == 1
        assert s.san_of_server(135) == 16


class TestStripedFile:
    def test_segments_split_at_stripe_boundaries(self):
        f = StripedFile(MemoryStore(b"\x00" * 1000), StripeConfig(100, 3))
        servers, lengths = f.server_segments(np.array([50]), np.array([200]))
        assert list(lengths) == [50, 100, 50]
        assert list(servers) == [0, 1, 2]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=1, max_value=3_000),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_per_server_bytes_conserved(self, accesses):
        """Splitting at stripe boundaries never loses or invents bytes."""
        f = StripedFile(MemoryStore(b"\x00" * 20_000), StripeConfig(128, 5))
        offs = np.array([a[0] for a in accesses])
        lens = np.array([a[1] for a in accesses])
        per_server = f.per_server_bytes(offs, lens)
        assert per_server.sum() == lens.sum()
        assert per_server.shape == (5,)

    def test_single_byte_access(self):
        f = StripedFile(MemoryStore(b"\x00" * 100), StripeConfig(10, 2))
        servers, lengths = f.server_segments(np.array([15]), np.array([1]))
        assert list(servers) == [1]
        assert list(lengths) == [1]

    def test_read_write_delegate_to_store(self):
        store = MemoryStore()
        f = StripedFile(store)
        f.write(0, b"abc")
        assert f.read(0, 3) == b"abc"
        assert f.size() == 3
