"""Byte store semantics."""

import pytest

from repro.storage.store import FileStore, HeaderOnlyStore, MemoryStore, VirtualStore
from repro.utils.errors import StorageError


class TestMemoryStore:
    def test_write_read_roundtrip(self):
        s = MemoryStore()
        s.write(0, b"hello")
        assert s.read(0, 5) == b"hello"
        assert s.size() == 5

    def test_write_past_end_zero_fills(self):
        s = MemoryStore()
        s.write(10, b"x")
        assert s.size() == 11
        assert s.read(0, 10) == b"\x00" * 10

    def test_overwrite(self):
        s = MemoryStore(b"abcdef")
        s.write(2, b"XY")
        assert s.getvalue() == b"abXYef"

    def test_read_beyond_end_raises(self):
        s = MemoryStore(b"abc")
        with pytest.raises(StorageError, match="beyond end"):
            s.read(1, 5)

    def test_negative_offset_raises(self):
        s = MemoryStore(b"abc")
        with pytest.raises(StorageError):
            s.read(-1, 1)
        with pytest.raises(StorageError):
            s.write(-1, b"a")


class TestFileStore:
    def test_roundtrip_on_disk(self, tmp_path):
        p = tmp_path / "vol.raw"
        with FileStore(p, "w+b") as s:
            s.write(0, b"0123456789")
            assert s.read(3, 4) == b"3456"
            assert s.size() == 10

    def test_read_only_rejects_writes(self, tmp_path):
        p = tmp_path / "f.bin"
        p.write_bytes(b"data")
        with FileStore(p, "rb") as s:
            with pytest.raises(StorageError, match="read-only"):
                s.write(0, b"x")

    def test_short_read_detected(self, tmp_path):
        p = tmp_path / "f.bin"
        p.write_bytes(b"abc")
        with FileStore(p) as s:
            with pytest.raises(StorageError):
                s.read(0, 10)

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="mode"):
            FileStore(tmp_path / "x", "a+b")


class TestVirtualStore:
    def test_size_only(self):
        s = VirtualStore(1 << 40)
        assert s.size() == 1 << 40

    def test_reads_rejected(self):
        with pytest.raises(StorageError, match="planning bugs"):
            VirtualStore(100).read(0, 1)

    def test_writes_rejected(self):
        with pytest.raises(StorageError):
            VirtualStore(100).write(0, b"x")

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            VirtualStore(-1)


class TestHeaderOnlyStore:
    def test_header_readable(self):
        s = HeaderOnlyStore(b"HEADER", 1000)
        assert s.read(0, 6) == b"HEADER"
        assert s.size() == 1000

    def test_overshoot_from_header_zero_filled(self):
        s = HeaderOnlyStore(b"AB", 1000)
        assert s.read(0, 4) == b"AB\x00\x00"

    def test_data_region_read_rejected(self):
        s = HeaderOnlyStore(b"AB", 1000)
        with pytest.raises(StorageError, match="virtual data region"):
            s.read(2, 1)

    def test_too_small_total_rejected(self):
        with pytest.raises(StorageError):
            HeaderOnlyStore(b"ABCD", 2)
