"""File-system profiles and their effect on the I/O model."""

import pytest

from repro.machine.partition import Partition
from repro.model.io import IOTimeModel
from repro.model.pipeline import DATASETS, FrameModel
from repro.storage.profiles import LUSTRE_ORNL, PROFILES, PVFS_BGP


class TestProfiles:
    def test_registry(self):
        assert PROFILES["pvfs"] is PVFS_BGP
        assert PROFILES["lustre"] is LUSTRE_ORNL

    def test_pvfs_matches_paper_inventory(self):
        assert PVFS_BGP.stripe.num_servers == 136
        assert PVFS_BGP.system.num_sans == 17

    def test_lustre_differs(self):
        assert LUSTRE_ORNL.stripe.stripe_size < PVFS_BGP.stripe.stripe_size
        assert LUSTRE_ORNL.stripe.num_servers > PVFS_BGP.stripe.num_servers

    def test_str(self):
        assert "Lustre" in str(LUSTRE_ORNL)


class TestProfiledModel:
    @pytest.fixture(scope="class")
    def report(self):
        return FrameModel(DATASETS["1120"]).io_report("raw", 2048)

    def test_profile_changes_price(self, report):
        part = Partition.for_cores(2048)
        t_pvfs = IOTimeModel(profile=PVFS_BGP).price(report, part).seconds
        t_lustre = IOTimeModel(profile=LUSTRE_ORNL).price(report, part).seconds
        assert t_pvfs != t_lustre
        assert 0.3 < t_pvfs / t_lustre < 3.0

    def test_default_is_pvfs_equivalent(self, report):
        part = Partition.for_cores(2048)
        t_default = IOTimeModel().price(report, part).seconds
        t_pvfs = IOTimeModel(profile=PVFS_BGP).price(report, part).seconds
        assert t_default == pytest.approx(t_pvfs)
