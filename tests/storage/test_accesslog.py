"""Access logging and block maps (the Fig. 9 machinery)."""

import pytest

from repro.storage.accesslog import Access, AccessLog, BlockMap
from repro.utils.errors import StorageError


class TestAccessLog:
    def test_record_and_summarize(self):
        log = AccessLog()
        log.record(0, 100)
        log.record(200, 300)
        log.record(0, 64, kind="meta")
        assert log.count == 2
        assert log.total_bytes == 400
        assert log.mean_access_bytes == 200
        assert len(log.meta_accesses()) == 1

    def test_unique_bytes_merges_overlaps(self):
        log = AccessLog()
        log.record(0, 100)
        log.record(50, 100)  # overlaps by 50
        log.record(300, 10)
        assert log.unique_bytes() == 160

    def test_density(self):
        log = AccessLog()
        log.record(0, 1000)
        assert log.density(500) == 0.5
        assert AccessLog().density(500) == 0.0

    def test_invalid_access_rejected(self):
        with pytest.raises(StorageError):
            Access(-1, 10)

    def test_extend_and_clear(self):
        a, b = AccessLog(), AccessLog()
        a.record(0, 1)
        b.record(1, 1)
        a.extend(b)
        assert a.count == 2
        a.clear()
        assert a.count == 0

    def test_summary_is_readable(self):
        log = AccessLog()
        log.record(0, 5_000_000)
        assert "1 accesses" in log.summary()


class TestBlockMap:
    def test_marks_touched_blocks(self):
        log = AccessLog()
        log.record(0, 100)  # first block
        log.record(900, 100)  # last block
        bm = BlockMap(1000, nblocks=10).mark(log)
        assert bm.touched[0] and bm.touched[9]
        assert bm.fraction_touched == pytest.approx(0.2)

    def test_spanning_access_marks_range(self):
        log = AccessLog()
        log.record(100, 500)
        bm = BlockMap(1000, nblocks=10).mark(log)
        assert list(bm.touched) == [False, True, True, True, True, True] + [False] * 4

    def test_render_shows_dark_and_light(self):
        log = AccessLog()
        log.record(0, 500)
        bm = BlockMap(1000, nblocks=64).mark(log)
        text = bm.render(width=64)
        assert "#" in text and "." in text

    def test_untouched_map(self):
        bm = BlockMap(1000, nblocks=8)
        assert bm.fraction_touched == 0.0

    def test_invalid_args(self):
        with pytest.raises(StorageError):
            BlockMap(0, 10)
