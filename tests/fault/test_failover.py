"""Compositor failover: conservation property + the 2048-rank acceptance run.

The conservation invariant: after re-partitioning dead compositors'
tiles among survivors, the owned rectangles — surviving tiles plus
adopted strips — tile the image exactly (full union, zero overlap).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compositing.directsend import (
    COMPOSITE_TAG,
    assemble_tiles,
    direct_send_compose_failover,
)
from repro.compositing.schedule import schedule_from_geometry
from repro.fault import FaultPlan, NodeCrash, compile_fault_plan
from repro.fault.failover import (
    check_exact_cover,
    coverage_rects,
    failover_assignments,
    split_rect_rows,
)
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.vmpi.runner import MPIWorld


def _schedule(ranks: int, grid: int, image: int):
    cam = Camera.looking_at_volume((grid,) * 3, width=image, height=image)
    dec = BlockDecomposition((grid,) * 3, ranks)
    return schedule_from_geometry(dec, cam, ranks)


class TestSplitRectRows:
    def test_partitions_exactly(self):
        strips = split_rect_rows((3, 5, 10, 7), 3)
        check_exact_cover([(x - 3, y - 5, w, h) for x, y, w, h in strips], 10, 7)

    def test_degenerate_rects_yield_nothing(self):
        assert split_rect_rows((0, 0, 0, 5), 2) == []
        assert split_rect_rows((0, 0, 5, 0), 2) == []
        assert split_rect_rows((0, 0, 5, 5), 0) == []

    def test_never_more_strips_than_rows(self):
        assert len(split_rect_rows((0, 0, 8, 3), 16)) == 3


class TestConservationProperty:
    """Randomized dead sets over real schedules: exact cover always holds."""

    @pytest.mark.parametrize("ranks,image", [(16, 64), (64, 128)])
    def test_exact_cover_under_random_dead_sets(self, ranks, image):
        sched = _schedule(ranks, 32, image)
        rng = np.random.default_rng(ranks * 1000 + image)
        for trial in range(25):
            # Kill between 1 and all-but-one compositors.
            k = int(rng.integers(1, sched.num_compositors))
            dead = rng.choice(sched.num_compositors, size=k, replace=False)
            assignments = failover_assignments(sched, dead)
            rects = coverage_rects(sched, dead, assignments)
            check_exact_cover(rects, image, image)

    def test_all_dead_is_total_loss(self):
        sched = _schedule(16, 32, 64)
        dead = range(sched.num_compositors)
        assert failover_assignments(sched, dead) == {}

    def test_deterministic_and_local(self):
        # Every rank computes assignments independently; the function
        # must be a pure function of (schedule, dead set).
        sched = _schedule(16, 32, 64)
        a = failover_assignments(sched, [3, 7, 11])
        b = failover_assignments(sched, [11, 3, 7])
        assert a == b


class TestPixelFailover:
    def test_small_world_recovers_full_canvas(self):
        """Real pixels: crash two compositors, canvas stays fully owned."""
        from repro.render.image import PartialImage

        ranks, image = 16, 64
        sched = _schedule(ranks, 32, image)

        def program(ctx):
            # A solid-colour footprint covering the whole image keeps
            # the geometry trivial while exercising the full protocol.
            px = np.zeros((image, image, 4), np.float32)
            px[..., ctx.rank % 3] = 0.05
            px[..., 3] = 0.05
            partial = PartialImage((0, 0, image, image), px, float(ctx.rank))
            res = yield from direct_send_compose_failover(ctx, partial, sched)
            return res

        plan = FaultPlan(
            node_crashes=(NodeCrash(1e-5, 0),), detect_s=1e-4, seed=11
        )
        world = MPIWorld.for_cores(ranks)
        res = world.run(program, fault=plan)

        # Node 0 in VN mode carries 4 ranks; all must be dead.
        dead = {r for r, v in enumerate(res.values) if v is None}
        assert len(dead) == 4
        rects = [rect for v in res.values if v for rect, _ in v]
        check_exact_cover(rects, image, image)
        canvas = assemble_tiles(res.values, image, image)
        assert canvas.shape == (image, image, 4)
        # Survivors' radiance reaches every pixel, so nothing is blank.
        assert float(canvas[..., 3].min()) > 0.0
        assert res.fault is not None
        assert res.fault.crashes == 1
        # Each dead compositor tile yields at least one recovered strip.
        dead_tiles = {t for t in dead if t < sched.num_compositors}
        assert res.fault.recoveries >= len(dead_tiles) > 0

    def test_no_crash_plan_delegates_to_fast_path(self):
        from repro.render.image import PartialImage

        ranks, image = 16, 64
        sched = _schedule(ranks, 32, image)

        def program(ctx):
            px = np.full((image, image, 4), 0.03, np.float32)
            partial = PartialImage((0, 0, image, image), px, float(ctx.rank))
            res = yield from direct_send_compose_failover(ctx, partial, sched)
            return res

        res = world_res = MPIWorld.for_cores(ranks).run(
            program, fault=FaultPlan(drop_prob=0.0, seed=1)
        )
        rects = [rect for v in world_res.values if v for rect, _ in v]
        check_exact_cover(rects, image, image)
        assert res.fault is not None and res.fault.crashes == 0


class TestAcceptance2048:
    def test_directsend_2048_survives_one_percent_crashes(self):
        """The ISSUE acceptance run: 2048 ranks, 512^2 image, 1% of
        nodes crash mid-frame; the frame completes via failover with
        full coverage and a fault report carrying availability/MTTR."""
        ranks, image = 2048, 512
        sched = _schedule(ranks, 96, image)
        plan = compile_fault_plan(
            29,
            num_nodes=ranks // 4,  # VN mode: 4 ranks per node
            duration_s=0.05,
            crash_frac=0.01,
        )
        assert len(plan.node_crashes) == 5  # 1% of 512 nodes

        def program(ctx):
            # partial=None: virtual geometry-only phase, same protocol.
            res = yield from direct_send_compose_failover(ctx, None, sched)
            return res

        world = MPIWorld.for_cores(ranks)
        res = world.run(program, fault=plan)

        dead = {r for r, v in enumerate(res.values) if v is None}
        assert len(dead) == 20  # 5 nodes x 4 ranks
        rects = [rect for v in res.values if v for rect, _ in v]
        check_exact_cover(rects, image, image)

        rep = res.fault
        assert rep is not None
        assert rep.crashes == 5
        assert 0.0 < rep.availability < 1.0
        assert rep.mttr_s > 0.0
        dead_tiles = {r for r in dead if r < sched.num_compositors}
        assert rep.recoveries >= len(dead_tiles) > 0
