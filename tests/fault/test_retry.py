"""Message-fault resilience: retry/backoff never reorders a pair's stream.

Drops are retransmitted with exponential backoff and duplicates are
suppressed, but the per-(source, dest) delivery order must stay exactly
the send order — the sequencing/holdback layer's pinned contract.
"""

from __future__ import annotations

import pytest

from repro.fault import FaultPlan, RetryPolicy
from repro.vmpi.runner import MPIWorld

LOSSY = FaultPlan(drop_prob=0.25, dup_prob=0.25, seed=17)


def _ring_program(n_msgs: int):
    def program(ctx):
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        reqs = [
            ctx.isend((ctx.rank, i), right, tag=5) for i in range(n_msgs)
        ]
        got = []
        for _ in range(n_msgs):
            got.append((yield from ctx.recv(source=left, tag=5)))
        yield from ctx.waitall(reqs)
        return got

    return program


class TestPerPairOrdering:
    def test_lossy_ring_delivers_in_send_order(self):
        n = 32
        res = MPIWorld.for_cores(8).run(_ring_program(n), fault=LOSSY)
        for rank, got in enumerate(res.values):
            left = (rank - 1) % 8
            assert got == [(left, i) for i in range(n)]
        rep = res.fault
        assert rep is not None
        # With 256 messages at 25%/25% the draws must actually fire —
        # otherwise this test exercises nothing.
        assert rep.messages_dropped > 0
        assert rep.messages_duplicated > 0
        assert rep.retries >= rep.messages_dropped  # every drop retried
        assert rep.messages_lost == 0  # no dead endpoints: all recovered
        assert rep.goodput == 1.0

    def test_lossy_run_is_deterministic(self):
        a = MPIWorld.for_cores(8).run(_ring_program(16), fault=LOSSY)
        b = MPIWorld.for_cores(8).run(_ring_program(16), fault=LOSSY)
        assert a.values == b.values
        assert a.elapsed_s == b.elapsed_s
        assert a.fault.summary() == b.fault.summary()

    def test_drops_cost_simulated_time(self):
        clean = MPIWorld.for_cores(8).run(_ring_program(16))
        lossy = MPIWorld.for_cores(8).run(_ring_program(16), fault=LOSSY)
        assert lossy.elapsed_s > clean.elapsed_s

    def test_backoff_policy_is_honoured(self):
        # A huge base delay must show up in the simulated clock.
        slow_retry = FaultPlan(
            drop_prob=0.25, seed=17, retry=RetryPolicy(base_s=0.5, backoff=1.0, max_delay_s=0.5)
        )
        fast_retry = FaultPlan(
            drop_prob=0.25, seed=17, retry=RetryPolicy(base_s=1e-6, backoff=1.0, max_delay_s=1e-6)
        )
        slow = MPIWorld.for_cores(4).run(_ring_program(8), fault=slow_retry)
        fast = MPIWorld.for_cores(4).run(_ring_program(8), fault=fast_retry)
        assert slow.values == fast.values
        assert slow.elapsed_s > fast.elapsed_s + 0.4


class TestCollectivesUnderLoss:
    @pytest.mark.parametrize("cores", [8, 32])
    def test_allreduce_barrier_complete_and_correct(self, cores):
        def program(ctx):
            total = yield from ctx.allreduce(ctx.rank + 1)
            yield from ctx.barrier()
            gathered = yield from ctx.gather(ctx.rank, root=0)
            return total, gathered

        res = MPIWorld.for_cores(cores).run(program, fault=LOSSY)
        expect = cores * (cores + 1) // 2
        for rank, (total, gathered) in enumerate(res.values):
            assert total == expect
            if rank == 0:
                assert gathered == list(range(cores))
            else:
                assert gathered is None
        assert res.fault.messages_dropped > 0
