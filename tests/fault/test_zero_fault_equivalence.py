"""The pinned invariant: an empty FaultPlan changes nothing, bitwise.

Installing ``FaultPlan.none()`` attaches the injector to the message
board (that is what makes its overhead measurable), but every hook is a
flag check that falls through — so images, timings, message counts,
traces, and farm ledgers must be *identical* to a run with no fault
layer at all.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.pipeline import ParallelVolumeRenderer
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.farm import FarmFaults, selftest_scenario
from repro.fault import FaultPlan
from repro.obs import Tracer
from repro.pio import NetCDFHandle
from repro.render.camera import Camera
from repro.render.transfer import TransferFunction
from repro.vmpi.runner import MPIWorld

GRID = (24, 24, 24)


@pytest.fixture(scope="module")
def scene():
    model = SupernovaModel(GRID, seed=5, time=0.5)
    handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
    camera = Camera.looking_at_volume(GRID, width=48, height=48)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    return handle, camera, tf


def _frame(scene, fault, tracer=None):
    handle, camera, tf = scene
    renderer = ParallelVolumeRenderer(
        MPIWorld.for_cores(8), camera, tf, step=0.8, fault=fault, tracer=tracer
    )
    return renderer.render_frame(handle)


class TestPipelineEquivalence:
    def test_image_and_accounting_bitwise_identical(self, scene):
        base = _frame(scene, None)
        empty = _frame(scene, FaultPlan.none())
        assert np.array_equal(base.image, empty.image)
        assert base.timing == empty.timing
        assert base.messages == empty.messages
        assert base.bytes_sent == empty.bytes_sent

    def test_no_fault_report_on_empty_plan(self, scene):
        empty = _frame(scene, FaultPlan.none())
        assert empty.fault is None
        assert empty.degraded is False

    def test_trace_bitwise_identical(self, scene):
        t0, t1 = Tracer(enabled=True), Tracer(enabled=True)
        _frame(scene, None, tracer=t0)
        _frame(scene, FaultPlan.none(), tracer=t1)
        assert t0.counters == t1.counters
        assert len(t0.spans) == len(t1.spans)
        for a, b in zip(t0.spans, t1.spans):
            assert (a.rank, a.name, a.cat, a.t0, a.t1) == (
                b.rank, b.name, b.cat, b.t0, b.t1
            )


class TestFarmEquivalence:
    def test_inactive_farm_faults_bitwise_identical(self):
        base = selftest_scenario().run()
        armed = dataclasses.replace(
            selftest_scenario(), fault=FarmFaults(crash_rate_per_node_hour=0.0)
        ).run()
        assert base.makespan_s == armed.makespan_s
        assert armed.faults is None
        assert [
            (r.t_arrive, r.t_hold, r.t_serve, r.t_done, r.nodes, r.cache_hit)
            for r in base.records
        ] == [
            (r.t_arrive, r.t_hold, r.t_serve, r.t_done, r.nodes, r.cache_hit)
            for r in armed.records
        ]
        assert base.util_node_seconds == armed.util_node_seconds
        assert base.backfilled == armed.backfilled


class TestWorldEquivalence:
    def test_collectives_unchanged_under_empty_plan(self):
        def program(ctx):
            total = yield from ctx.allreduce(ctx.rank + 1)
            yield from ctx.barrier()
            return total

        base = MPIWorld.for_cores(16).run(program)
        empty = MPIWorld.for_cores(16).run(program, fault=FaultPlan.none())
        assert base.values == empty.values
        assert base.elapsed_s == empty.elapsed_s
        assert base.messages == empty.messages
        assert empty.fault is not None  # report exists...
        assert empty.fault.crashes == 0  # ...and records nothing
