"""The ``python -m repro chaos`` surface and its spec validation."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fault.chaos import run_chaos
from repro.utils.errors import ConfigError


class TestRunChaos:
    def test_default_sweep_shapes(self):
        report, last = run_chaos({"sweep": [0.0, 10.0], "seed": 7})
        rates = [e["crash_rate_per_node_hour"] for e in report["sweep"]]
        assert rates == [0.0, 10.0]
        zero, ten = report["sweep"]
        assert zero["crashes"] == 0
        assert zero["availability"] == 1.0
        assert ten["availability"] <= 1.0
        for entry in report["sweep"]:
            for key in ("makespan_s", "slo_attainment", "p95_s", "jobs_killed",
                        "retries", "goodput", "mttr_s"):
                assert key in entry
        assert last is not None

    def test_deterministic(self):
        a, _ = run_chaos({"sweep": [5.0], "seed": 3})
        b, _ = run_chaos({"sweep": [5.0], "seed": 3})
        assert a == b

    def test_unknown_spec_key_names_path(self):
        with pytest.raises(ConfigError, match=r"unknown key 'chaos\.sweeep'"):
            run_chaos({"sweeep": [1.0]})

    def test_scenario_subspec_validated_with_same_validator(self):
        with pytest.raises(ConfigError, match=r"unknown key 'scenario\.nodez'"):
            run_chaos({"scenario": {"nodez": 4}})


class TestChaosCLI:
    def test_end_to_end_writes_report_and_trace(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        rc = main([
            "chaos", "--sweep", "0", "2", "--seed", "5",
            "--out", str(out), "--trace-out", str(trace),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert [e["crash_rate_per_node_hour"] for e in report["sweep"]] == [0.0, 2.0]
        events = json.loads(trace.read_text())
        assert events["traceEvents"]
        table = capsys.readouterr().out
        assert "avail%" in table and "MTTR" in table

    def test_json_mode_emits_report(self, capsys):
        rc = main(["chaos", "--sweep", "0", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sweep"][0]["crashes"] == 0

    def test_spec_file_round_trip(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"sweep": [1.0], "repair_s": 2.0, "seed": 9}))
        rc = main(["chaos", "--spec", str(spec), "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["repair_s"] == 2.0

    def test_bad_spec_key_fails_with_path(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"sweep": [1.0], "repair": 2.0}))
        rc = main(["chaos", "--spec", str(spec)])
        assert rc != 0
        assert "unknown key 'chaos.repair'" in capsys.readouterr().err

    def test_malformed_spec_file_fails_cleanly(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text("{not json")
        rc = main(["chaos", "--spec", str(spec)])
        assert rc != 0
        assert "cannot load chaos spec" in capsys.readouterr().err
