"""FaultPlan construction, validation, and compilation from rates."""

from __future__ import annotations

import pytest

from repro.fault import (
    FarmFaults,
    FaultPlan,
    IOStraggler,
    LinkWindow,
    NodeCrash,
    RetryPolicy,
    compile_fault_plan,
)
from repro.utils.errors import FaultError


class TestFaultPlan:
    def test_none_is_empty(self):
        assert FaultPlan.none().empty

    def test_any_fault_makes_it_non_empty(self):
        assert not FaultPlan(node_crashes=(NodeCrash(1.0, 0),)).empty
        assert not FaultPlan(io_stragglers=(IOStraggler(0, 1.0),)).empty
        assert not FaultPlan(link_windows=(LinkWindow(0.0, 1.0, 0.5),)).empty
        assert not FaultPlan(drop_prob=0.1).empty
        assert not FaultPlan(dup_prob=0.1).empty

    def test_plan_is_hashable_and_frozen(self):
        plan = FaultPlan(seed=3, drop_prob=0.1)
        assert hash(plan) == hash(FaultPlan(seed=3, drop_prob=0.1))
        with pytest.raises(AttributeError):
            plan.seed = 4

    @pytest.mark.parametrize("bad", [{"drop_prob": 1.0}, {"drop_prob": -0.1},
                                     {"dup_prob": 1.5}, {"detect_s": -1.0}])
    def test_probability_validation(self, bad):
        with pytest.raises(FaultError):
            FaultPlan(**bad)

    def test_negative_crash_time_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(node_crashes=(NodeCrash(-1.0, 0),))

    def test_invalid_link_window_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(link_windows=(LinkWindow(2.0, 1.0, 0.5),))
        with pytest.raises(FaultError):
            FaultPlan(link_windows=(LinkWindow(0.0, 1.0, 0.0),))


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        p = RetryPolicy(base_s=1e-4, backoff=2.0, max_delay_s=4e-4)
        assert p.delay(0) == pytest.approx(1e-4)
        assert p.delay(1) == pytest.approx(2e-4)
        assert p.delay(2) == pytest.approx(4e-4)
        assert p.delay(10) == pytest.approx(4e-4)  # capped


class TestCompile:
    def test_deterministic(self):
        kw = dict(num_nodes=64, duration_s=10.0, num_ranks=256,
                  crash_frac=0.1, straggler_frac=0.05,
                  straggler_delay_s=2.0, link_flaps=2, drop_prob=0.01)
        assert compile_fault_plan(7, **kw) == compile_fault_plan(7, **kw)
        assert compile_fault_plan(7, **kw) != compile_fault_plan(8, **kw)

    def test_crash_fraction_and_window(self):
        plan = compile_fault_plan(
            1, num_nodes=100, duration_s=10.0, crash_frac=0.1,
            crash_window=(0.2, 0.8),
        )
        assert len(plan.node_crashes) == 10
        for c in plan.node_crashes:
            assert 2.0 <= c.time_s <= 8.0
            assert 0 <= c.node < 100

    def test_protected_nodes_never_crash(self):
        plan = compile_fault_plan(
            1, num_nodes=8, duration_s=1.0, crash_frac=0.9,
            protect_nodes=(0, 1),
        )
        assert all(c.node not in (0, 1) for c in plan.node_crashes)

    def test_stragglers_need_rank_count(self):
        plan = compile_fault_plan(
            1, num_nodes=4, duration_s=1.0, straggler_frac=0.5,
        )  # num_ranks omitted -> no stragglers drawn
        assert plan.io_stragglers == ()

    def test_zero_rates_compile_to_empty(self):
        assert compile_fault_plan(1, num_nodes=4, duration_s=1.0).empty


class TestFarmFaults:
    def test_active(self):
        assert not FarmFaults().active
        assert FarmFaults(crash_rate_per_node_hour=1.0).active
        assert not FarmFaults(crash_rate_per_node_hour=1.0, max_crashes=0).active

    def test_validation(self):
        with pytest.raises(FaultError):
            FarmFaults(crash_rate_per_node_hour=-1.0)
        with pytest.raises(FaultError):
            FarmFaults(repair_s=0.0)
