"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SupernovaModel
from repro.render.camera import Camera
from repro.render.transfer import TransferFunction


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid() -> tuple[int, int, int]:
    return (16, 16, 16)


@pytest.fixture
def supernova(small_grid) -> SupernovaModel:
    return SupernovaModel(small_grid, seed=99, time=0.3)


@pytest.fixture
def small_camera(small_grid) -> Camera:
    return Camera.looking_at_volume(small_grid, width=40, height=32)


@pytest.fixture
def gray_tf() -> TransferFunction:
    return TransferFunction.grayscale_ramp()
