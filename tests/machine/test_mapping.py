"""Rank <-> coordinate mapping invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine.mapping import MAPPING_ORDERS, RankMapping
from repro.machine.partition import Partition
from repro.utils.errors import ConfigError


@pytest.fixture
def partition():
    return Partition(32, processes_per_node=4)  # 128 ranks on a 2x4x4 mesh


class TestRoundTrip:
    @pytest.mark.parametrize("order", MAPPING_ORDERS)
    def test_rank_coord_roundtrip(self, partition, order):
        m = RankMapping(partition, order)
        ranks = np.arange(m.nprocs)
        coords = m.coords_of(ranks)
        back = m.rank_of(coords)
        assert np.array_equal(back, ranks)

    @pytest.mark.parametrize("order", MAPPING_ORDERS)
    def test_mapping_is_a_bijection(self, partition, order):
        m = RankMapping(partition, order)
        coords = m.coords_of(np.arange(m.nprocs))
        unique = {tuple(c) for c in coords.reshape(-1, 4)}
        assert len(unique) == m.nprocs

    @given(st.sampled_from(MAPPING_ORDERS), st.integers(min_value=0, max_value=127))
    def test_scalar_matches_vector(self, order, rank):
        m = RankMapping(Partition(32, processes_per_node=4), order)
        assert m.coord_of(rank) == tuple(m.coords_of(np.array([rank]))[0])


class TestOrders:
    def test_xyzt_x_varies_fastest(self, partition):
        m = RankMapping(partition, "XYZT")
        c0 = m.coord_of(0)
        c1 = m.coord_of(1)
        assert c1[0] == c0[0] + 1  # x moved
        assert c1[1:] == c0[1:]

    def test_txyz_core_varies_fastest(self, partition):
        m = RankMapping(partition, "TXYZ")
        assert m.coord_of(0)[3] == 0
        assert m.coord_of(1)[3] == 1

    def test_txyz_keeps_node_ranks_together(self, partition):
        m = RankMapping(partition, "TXYZ")
        nodes = m.node_of(np.arange(8))
        assert np.array_equal(nodes[:4], [nodes[0]] * 4)

    def test_unknown_order_rejected(self, partition):
        with pytest.raises(ConfigError, match="unknown mapping"):
            RankMapping(partition, "ZZZZ")

    def test_rank_out_of_range_rejected(self, partition):
        m = RankMapping(partition)
        with pytest.raises(ConfigError):
            m.coords_of(np.array([m.nprocs]))

    def test_coord_out_of_range_rejected(self, partition):
        m = RankMapping(partition)
        with pytest.raises(ConfigError):
            m.rank_of(np.array([99, 0, 0, 0]))
