"""Partition shapes, modes, and the standard ALCF size table."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine.partition import (
    STANDARD_PARTITIONS,
    Partition,
    torus_shape_for_nodes,
)
from repro.utils.errors import ConfigError


class TestTorusShapes:
    def test_standard_shapes_cover_nodes(self):
        for nodes, shape in STANDARD_PARTITIONS.items():
            assert int(np.prod(shape)) == nodes

    def test_midplane_is_8x8x8(self):
        assert torus_shape_for_nodes(512) == (8, 8, 8)

    def test_full_32k_cores_partition(self):
        # 32K cores in VN mode = 8192 nodes.
        assert torus_shape_for_nodes(8192) == (16, 16, 32)

    @given(st.integers(min_value=1, max_value=5000))
    def test_fallback_factorization_covers(self, nodes):
        shape = torus_shape_for_nodes(nodes)
        assert int(np.prod(shape)) == nodes
        assert all(s >= 1 for s in shape)


class TestFallbackFactorization:
    """The non-standard path: factor-rich counts stay near-cubic,
    degenerate counts are exactly the documented ones."""

    def test_factor_rich_counts_near_cubic(self):
        # max/min dim ratio bounded: the greedy split cannot strand all
        # the factors on one axis when plenty are available.
        for nodes, bound in ((96, 2.0), (768, 2.0), (6000, 2.0), (1440, 2.5)):
            shape = torus_shape_for_nodes(nodes)
            assert int(np.prod(shape)) == nodes
            assert max(shape) / min(shape) <= bound, (nodes, shape)

    def test_known_fallback_shapes(self):
        assert torus_shape_for_nodes(96) == (4, 4, 6)
        assert torus_shape_for_nodes(768) == (8, 8, 12)
        assert torus_shape_for_nodes(6000) == (15, 20, 20)

    def test_dims_sorted_ascending(self):
        for nodes in (96, 97, 768, 6000, 2 * 1019):
            shape = torus_shape_for_nodes(nodes)
            assert tuple(sorted(shape)) == shape

    def test_primes_yield_documented_chains(self):
        # A prime count has no other factorization: the chain shape is
        # the documented degenerate case, not an accident.
        for p in (7, 97, 1019, 4999):
            assert torus_shape_for_nodes(p) == (1, 1, p)

    def test_chains_only_for_primes(self):
        # Any composite count with >= 2 prime factors must spread them
        # over at least two dimensions.
        for nodes in range(2, 2000):
            shape = torus_shape_for_nodes(nodes)
            nfactors = _num_prime_factors(nodes)
            if nfactors >= 2:
                assert shape[1] > 1, (nodes, shape)

    def test_near_primes_get_a_second_axis(self):
        assert torus_shape_for_nodes(2 * 1019) == (1, 2, 1019)

    @given(st.integers(min_value=2, max_value=40960))
    def test_fallback_never_beats_its_factorization(self, nodes):
        # Product is exact, and chain shapes appear iff the count is prime.
        shape = torus_shape_for_nodes(nodes)
        assert int(np.prod(shape)) == nodes
        if shape[:2] == (1, 1) and nodes not in STANDARD_PARTITIONS:
            assert _num_prime_factors(nodes) == 1


def _num_prime_factors(n: int) -> int:
    count, f = 0, 2
    while f * f <= n:
        while n % f == 0:
            count += 1
            n //= f
        f += 1
    return count + (1 if n > 1 else 0)


class TestPartition:
    def test_for_cores_vn_mode(self):
        p = Partition.for_cores(32768)
        assert p.nodes == 8192
        assert p.nprocs == 32768
        assert p.shape == (16, 16, 32)

    def test_core_counts_of_the_paper_sweep(self):
        for cores in (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768):
            p = Partition.for_cores(cores)
            assert p.nprocs == cores

    def test_sub_midplane_is_mesh(self):
        assert not Partition(64).is_torus
        assert Partition(512).is_torus

    def test_io_nodes(self):
        assert Partition.for_cores(64).io_nodes == 1
        assert Partition.for_cores(32768).io_nodes == 128

    def test_ram_per_process(self):
        p = Partition(16, processes_per_node=4)
        assert p.ram_per_process == 2**29

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError, match="modes"):
            Partition(16, processes_per_node=3)

    def test_indivisible_cores_rejected(self):
        with pytest.raises(ConfigError, match="divisible"):
            Partition.for_cores(66, processes_per_node=4)

    def test_oversized_partition_rejected(self):
        with pytest.raises(ConfigError, match="exceeds machine"):
            Partition(100_000)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError, match="does not cover"):
            Partition(64, shape=(4, 4, 5))

    def test_str_mentions_kind(self):
        assert "mesh" in str(Partition(64))
        assert "torus" in str(Partition(512))
