"""Partition shapes, modes, and the standard ALCF size table."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine.partition import (
    STANDARD_PARTITIONS,
    Partition,
    torus_shape_for_nodes,
)
from repro.utils.errors import ConfigError


class TestTorusShapes:
    def test_standard_shapes_cover_nodes(self):
        for nodes, shape in STANDARD_PARTITIONS.items():
            assert int(np.prod(shape)) == nodes

    def test_midplane_is_8x8x8(self):
        assert torus_shape_for_nodes(512) == (8, 8, 8)

    def test_full_32k_cores_partition(self):
        # 32K cores in VN mode = 8192 nodes.
        assert torus_shape_for_nodes(8192) == (16, 16, 32)

    @given(st.integers(min_value=1, max_value=5000))
    def test_fallback_factorization_covers(self, nodes):
        shape = torus_shape_for_nodes(nodes)
        assert int(np.prod(shape)) == nodes
        assert all(s >= 1 for s in shape)


class TestPartition:
    def test_for_cores_vn_mode(self):
        p = Partition.for_cores(32768)
        assert p.nodes == 8192
        assert p.nprocs == 32768
        assert p.shape == (16, 16, 32)

    def test_core_counts_of_the_paper_sweep(self):
        for cores in (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768):
            p = Partition.for_cores(cores)
            assert p.nprocs == cores

    def test_sub_midplane_is_mesh(self):
        assert not Partition(64).is_torus
        assert Partition(512).is_torus

    def test_io_nodes(self):
        assert Partition.for_cores(64).io_nodes == 1
        assert Partition.for_cores(32768).io_nodes == 128

    def test_ram_per_process(self):
        p = Partition(16, processes_per_node=4)
        assert p.ram_per_process == 2**29

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError, match="modes"):
            Partition(16, processes_per_node=3)

    def test_indivisible_cores_rejected(self):
        with pytest.raises(ConfigError, match="divisible"):
            Partition.for_cores(66, processes_per_node=4)

    def test_oversized_partition_rejected(self):
        with pytest.raises(ConfigError, match="exceeds machine"):
            Partition(100_000)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError, match="does not cover"):
            Partition(64, shape=(4, 4, 5))

    def test_str_mentions_kind(self):
        assert "mesh" in str(Partition(64))
        assert "torus" in str(Partition(512))
