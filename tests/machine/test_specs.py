"""Machine spec sanity: the numbers in Sec. III-A."""

import pytest

from repro.machine.specs import BGP_ALCF, MachineSpec, NodeSpec
from repro.utils.errors import ConfigError
from repro.utils.units import GIB, TIB


class TestNodeSpec:
    def test_defaults_match_paper(self):
        n = NodeSpec()
        assert n.cores == 4
        assert n.clock_hz == 850e6
        assert n.ram_bytes == 2 * GIB

    def test_ram_per_process_vn_mode(self):
        assert NodeSpec().ram_per_process(4) == GIB // 2

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            NodeSpec(cores=0)


class TestMachineSpec:
    def test_alcf_size(self):
        assert BGP_ALCF.total_nodes == 40 * 1024
        assert BGP_ALCF.total_cores == 163840  # "160,000-core Blue Gene/P"

    def test_total_memory_is_80tb(self):
        assert BGP_ALCF.total_ram_bytes == 80 * TIB

    def test_io_node_ratio(self):
        # One I/O node per 64 compute nodes.
        assert BGP_ALCF.io_nodes_for(64) == 1
        assert BGP_ALCF.io_nodes_for(65) == 2
        assert BGP_ALCF.io_nodes_for(8192) == 128

    def test_io_nodes_never_zero(self):
        assert BGP_ALCF.io_nodes_for(1) == 1

    def test_torus_bandwidth_is_3_4_gbit(self):
        assert BGP_ALCF.torus_link.bandwidth_Bps == pytest.approx(3.4e9 / 8)

    def test_tree_bandwidth_is_twice_torus(self):
        assert BGP_ALCF.tree_link.bandwidth_Bps == pytest.approx(
            2 * BGP_ALCF.torus_link.bandwidth_Bps
        )

    def test_custom_machine(self):
        m = MachineSpec(nodes_per_rack=16, racks=2)
        assert m.total_nodes == 32
