"""Volume blocks and trilinear sampling."""

import numpy as np
import pytest

from repro.render.volume import VolumeBlock
from repro.utils.errors import ConfigError


class TestGeometry:
    def test_whole_volume_bounds(self):
        vb = VolumeBlock.whole(np.zeros((4, 6, 8), np.float32))
        assert np.array_equal(vb.world_lo, [0, 0, 0])
        assert np.array_equal(vb.world_hi, [7, 5, 3])  # (x, y, z)

    def test_interior_block_extends_to_neighbour(self):
        data = np.zeros((4, 8, 8), np.float32)
        vb = VolumeBlock(data[:, :, :4], (4, 8, 8), (0, 0, 0), (4, 8, 4))
        # Interior x face ends at the neighbour's first voxel (x=4).
        assert vb.world_hi[0] == 4

    def test_boundary_block_clipped(self):
        data = np.zeros((4, 8, 8), np.float32)
        vb = VolumeBlock(data[:, :, 4:], (4, 8, 8), (0, 0, 4), (4, 8, 4))
        assert vb.world_hi[0] == 7  # volume edge, not 8

    def test_center(self):
        vb = VolumeBlock.whole(np.zeros((5, 5, 5), np.float32))
        assert np.allclose(vb.world_center, [2, 2, 2])

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            VolumeBlock(np.zeros((2, 2), np.float32), (2, 2, 2), (0, 0, 0), (2, 2, 2))
        with pytest.raises(ConfigError):
            VolumeBlock(np.zeros((2, 2, 2), np.float32), (2, 2, 2), (1, 1, 1), (2, 2, 2))


class TestSampling:
    def test_exact_at_grid_points(self, rng):
        data = rng.random((5, 5, 5)).astype(np.float32)
        vb = VolumeBlock.whole(data)
        pts = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0], [4.0, 4.0, 4.0]])
        vals = vb.sample_world(pts)
        assert vals[0] == pytest.approx(data[3, 2, 1], rel=1e-6)
        assert vals[1] == pytest.approx(data[0, 0, 0], rel=1e-6)
        assert vals[2] == pytest.approx(data[4, 4, 4], rel=1e-6)

    def test_linear_along_axis(self):
        data = np.zeros((2, 2, 2), np.float32)
        data[:, :, 1] = 1.0
        vb = VolumeBlock.whole(data)
        xs = np.linspace(0, 1, 11)
        pts = np.stack([xs, np.zeros(11), np.zeros(11)], axis=-1)
        assert np.allclose(vb.sample_world(pts), xs, atol=1e-6)

    def test_clamping_outside(self):
        data = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
        vb = VolumeBlock.whole(data)
        assert vb.sample_world(np.array([[-1.0, 0, 0]])) == pytest.approx(data[0, 0, 0])
        assert vb.sample_world(np.array([[5.0, 5.0, 5.0]])) == pytest.approx(data[1, 1, 1])

    def test_ghost_makes_blocks_agree_at_shared_face(self, rng):
        """Samples on the face between blocks must match exactly."""
        grid = (8, 8, 8)
        data = rng.random(grid).astype(np.float32)
        left = VolumeBlock(data[:, :, :5], grid, (0, 0, 0), (8, 8, 4))  # +1 ghost x
        right = VolumeBlock(data[:, :, 3:], grid, (0, 0, 4), (8, 8, 4), ghost_lo=(0, 0, 1))
        face_pts = np.stack(
            [np.full(20, 4.0), rng.uniform(0, 7, 20), rng.uniform(0, 7, 20)], axis=-1
        )
        assert np.allclose(left.sample_world(face_pts), right.sample_world(face_pts), atol=1e-6)

    def test_interior_sample_near_face_uses_ghost(self, rng):
        grid = (4, 4, 8)
        data = rng.random(grid).astype(np.float32)
        whole = VolumeBlock.whole(data)
        left = VolumeBlock(data[:, :, :5], grid, (0, 0, 0), (4, 4, 4))
        pts = np.array([[3.7, 1.2, 2.1], [3.99, 3.0, 1.0]])
        assert np.allclose(left.sample_world(pts), whole.sample_world(pts), atol=1e-6)
