"""Block decomposition invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.render.decomposition import BlockDecomposition, factor3
from repro.utils.errors import ConfigError


class TestFactor3:
    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_preserved(self, n):
        f = factor3(n)
        assert int(np.prod(f)) == n

    def test_powers_of_two_cubic(self):
        assert factor3(8) == (2, 2, 2)
        assert factor3(64) == (4, 4, 4)
        assert factor3(32768) == (32, 32, 32)


class TestDecomposition:
    @settings(max_examples=60, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=4, max_value=20),
            st.integers(min_value=4, max_value=20),
            st.integers(min_value=4, max_value=20),
        ),
        st.integers(min_value=1, max_value=32),
    )
    def test_blocks_partition_exactly(self, grid, nblocks):
        """Every voxel belongs to exactly one block."""
        try:
            dec = BlockDecomposition(grid, nblocks)
        except ConfigError:
            return  # more blocks than voxels along an axis — fine
        count = np.zeros(grid, dtype=np.int32)
        for b in dec.blocks():
            sl = tuple(slice(s, s + c) for s, c in zip(b.start, b.count))
            count[sl] += 1
        assert np.all(count == 1)

    def test_balanced_sizes(self):
        dec = BlockDecomposition((10, 10, 10), 8)
        sizes = [b.num_voxels for b in dec.blocks()]
        assert max(sizes) == 125 and min(sizes) == 125

    def test_uneven_split_differs_by_one_layer(self):
        dec = BlockDecomposition((10, 4, 4), 3, block_grid=(3, 1, 1))
        zs = [b.count[0] for b in dec.blocks()]
        assert sorted(zs) == [3, 3, 4]

    def test_block_grid_must_match(self):
        with pytest.raises(ConfigError, match="does not produce"):
            BlockDecomposition((8, 8, 8), 8, block_grid=(2, 2, 3))

    def test_too_many_blocks_rejected(self):
        with pytest.raises(ConfigError, match="more blocks than voxels"):
            BlockDecomposition((2, 2, 2), 64)

    def test_round_robin_rank_allocation(self):
        dec = BlockDecomposition((8, 8, 8), 8)
        owned = [b.index for r in range(4) for b in dec.blocks_for_rank(r, 4)]
        assert sorted(owned) == list(range(8))
        assert [b.index for b in dec.blocks_for_rank(1, 4)] == [1, 5]


class TestGhostRead:
    def test_interior_block_gets_full_ghost(self):
        dec = BlockDecomposition((12, 12, 12), 27, block_grid=(3, 3, 3))
        b = dec.block(13)  # center block
        rs, rc, gl = b.ghost_read((12, 12, 12), ghost=1)
        assert rs == (3, 3, 3)
        assert rc == (6, 6, 6)
        assert gl == (1, 1, 1)

    def test_corner_block_clipped(self):
        dec = BlockDecomposition((12, 12, 12), 27, block_grid=(3, 3, 3))
        b = dec.block(0)
        rs, rc, gl = b.ghost_read((12, 12, 12), ghost=1)
        assert rs == (0, 0, 0)
        assert rc == (5, 5, 5)
        assert gl == (0, 0, 0)


class TestVisibilityOrder:
    def test_front_to_back_from_eye(self):
        dec = BlockDecomposition((8, 8, 8), 8)
        eye = np.array([-100.0, 3.5, 3.5])  # looking down +x
        order = dec.visibility_order(eye)
        centers = dec.centers()
        dists = np.linalg.norm(centers[order] - eye, axis=1)
        assert np.all(np.diff(dists) >= 0)

    def test_order_is_permutation(self):
        dec = BlockDecomposition((8, 8, 8), 12)
        order = dec.visibility_order(np.array([10.0, 20.0, 30.0]))
        assert sorted(order) == list(range(12))
