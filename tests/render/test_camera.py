"""Camera: rays, projection, footprints."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.utils.errors import ConfigError


@pytest.fixture
def cam():
    return Camera(eye=(0, 0, -10), center=(0, 0, 0), width=100, height=80, fov_deg=40)


class TestRays:
    def test_directions_unit_length(self, cam):
        px, py = np.meshgrid(np.arange(100), np.arange(80))
        _o, d = cam.rays_for_pixels(px, py)
        assert np.allclose(np.linalg.norm(d, axis=-1), 1.0)

    def test_center_pixel_points_forward(self, cam):
        _o, d = cam.rays_for_pixels(np.array([49]), np.array([39]))
        assert np.dot(d[0], cam.forward) > 0.99

    def test_origins_at_eye(self, cam):
        o, _d = cam.rays_for_pixels(np.array([0]), np.array([0]))
        assert np.allclose(o[0], cam.eye)

    def test_corner_rays_diverge(self, cam):
        _o, d = cam.rays_for_pixels(np.array([0, 99]), np.array([0, 79]))
        assert np.dot(d[0], d[1]) < 1.0


class TestProjection:
    def test_projection_inverts_rays(self, cam):
        """A point along pixel (px, py)'s ray projects back to (px, py)."""
        px = np.array([10, 50, 99])
        py = np.array([5, 40, 79])
        o, d = cam.rays_for_pixels(px, py)
        points = o + 7.5 * d
        pix = cam.project(points)
        assert np.allclose(pix[:, 0], px, atol=1e-6)
        assert np.allclose(pix[:, 1], py, atol=1e-6)

    def test_point_behind_eye_is_nan(self, cam):
        pix = cam.project(np.array([0.0, 0.0, -20.0]))
        assert np.all(np.isnan(pix))

    def test_depth_of(self, cam):
        assert cam.depth_of(np.array([0, 0, 0])) == pytest.approx(10.0)


class TestFootprint:
    def test_centered_box_covers_center(self, cam):
        rect = cam.footprint(np.array([-1, -1, -1]), np.array([1, 1, 1]))
        assert rect is not None
        x0, y0, w, h = rect
        assert x0 <= 50 <= x0 + w
        assert y0 <= 40 <= y0 + h

    def test_footprint_clipped_to_image(self, cam):
        rect = cam.footprint(np.array([-100, -100, -5]), np.array([100, 100, 5]))
        assert rect == (0, 0, 100, 80)

    def test_offscreen_box_none(self, cam):
        rect = cam.footprint(np.array([500, 500, 5]), np.array([501, 501, 6]))
        assert rect is None

    def test_box_behind_camera_conservative(self, cam):
        rect = cam.footprint(np.array([-1, -1, -30]), np.array([1, 1, -15]))
        assert rect == (0, 0, 100, 80)

    def test_smaller_box_smaller_footprint(self, cam):
        big = cam.footprint(np.array([-2, -2, -2]), np.array([2, 2, 2]))
        small = cam.footprint(np.array([-1, -1, -1]), np.array([1, 1, 1]))
        assert big is not None and small is not None
        assert small[2] * small[3] < big[2] * big[3]


class TestLookingAtVolume:
    def test_whole_volume_visible(self):
        cam = Camera.looking_at_volume((32, 32, 32), width=64, height=64)
        rect = cam.footprint(np.array([0, 0, 0]), np.array([31, 31, 31]))
        assert rect is not None
        x0, y0, w, h = rect
        assert w > 10 and h > 10  # fills a good part of the frame
        assert 0 <= x0 and x0 + w <= 64

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            Camera((0, 0, 0), (0, 0, 0))  # eye == center
        with pytest.raises(ConfigError):
            Camera((0, 0, -1), (0, 0, 0), width=0)
        with pytest.raises(ConfigError):
            Camera((0, 0, -1), (0, 0, 0), fov_deg=200)


class TestOrthographic:
    def _ortho(self):
        return Camera(
            eye=(0, 0, -10), center=(0, 0, 0), width=64, height=64,
            orthographic=True, ortho_height=4.0,
        )

    def test_rays_parallel(self):
        cam = self._ortho()
        px, py = np.meshgrid(np.arange(64), np.arange(64))
        o, d = cam.rays_for_pixels(px, py)
        assert np.allclose(d, d[0, 0])
        # Origins spread across the view window.
        assert not np.allclose(o[0, 0], o[-1, -1])

    def test_projection_inverts_rays(self):
        cam = self._ortho()
        px = np.array([3, 31, 60])
        py = np.array([5, 32, 63])
        o, d = cam.rays_for_pixels(px, py)
        pix = cam.project(o + 4.0 * d)
        assert np.allclose(pix[:, 0], px, atol=1e-9)
        assert np.allclose(pix[:, 1], py, atol=1e-9)

    def test_no_perspective_shrink(self):
        """Same-size objects project same-size at any depth."""
        cam = self._ortho()
        near = cam.project(np.array([[1.0, 0, -2.0], [-1.0, 0, -2.0]]))
        far = cam.project(np.array([[1.0, 0, 5.0], [-1.0, 0, 5.0]]))
        assert np.allclose(near[:, 0], far[:, 0])

    def test_depth_is_axial(self):
        cam = self._ortho()
        # Two points at the same z: same depth even off axis.
        assert cam.depth_of(np.array([1.5, 1.5, 0.0])) == pytest.approx(
            cam.depth_of(np.array([0.0, 0.0, 0.0]))
        )

    def test_parallel_render_matches_serial_ortho(self, rng):
        from repro.render.decomposition import BlockDecomposition
        from repro.render.image import blank_image, composite_over
        from repro.render.raycast import render_block, render_volume_serial
        from repro.render.transfer import TransferFunction
        from repro.render.volume import VolumeBlock

        grid = (12, 12, 12)
        data = rng.random(grid).astype(np.float32)
        cam = Camera(
            eye=(40.0, 20.0, -25.0), center=(5.5, 5.5, 5.5), width=32, height=32,
            orthographic=True, ortho_height=24.0,
        )
        tf = TransferFunction.grayscale_ramp()
        ref = render_volume_serial(cam, data, tf, step=0.7)
        dec = BlockDecomposition(grid, 8)
        partials = []
        for b in dec.blocks():
            rs, rc, gl = b.ghost_read(grid, ghost=1)
            sub = data[rs[0]:rs[0]+rc[0], rs[1]:rs[1]+rc[1], rs[2]:rs[2]+rc[2]]
            p = render_block(cam, VolumeBlock(sub, grid, b.start, b.count, gl), tf, 0.7)
            if p is not None:
                partials.append(p)
        img = composite_over(blank_image(32, 32), partials)
        assert np.abs(img - ref).max() < 5e-3

    def test_invalid_ortho_height(self):
        with pytest.raises(ConfigError):
            Camera((0, 0, -5), (0, 0, 0), orthographic=True, ortho_height=0.0)

    def test_default_ortho_height_frames_center(self):
        cam = Camera((0, 0, -10), (0, 0, 0), fov_deg=30, width=64, height=64,
                     orthographic=True)
        # Matches the perspective frame at the centre's distance.
        expected = 2 * 10 * np.tan(np.radians(15.0)) / 2
        assert cam._half_h == pytest.approx(expected)
