"""Property tests: the compacted kernel against the reference kernel.

:func:`render_block` marches with active-ray compaction, chunked
batches, and float32 accumulation; :func:`render_block_reference` is
the plain per-sample-index float64 loop it replaced.  Global sample
alignment guarantees both compute the same integral; these tests pin
that equivalence across random cameras, block shapes, steps, and
early-termination thresholds.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.render.camera import Camera
from repro.render.raycast import (
    build_ray_plan,
    ray_box_intersect,
    render_block,
    render_block_reference,
)
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock

# The compacted kernel samples in float32 (the reference in float64),
# so a value landing on a transfer-function bin edge may fall one bin
# either way; one flipped bin moves the pixel by at most one sample's
# contribution.  The threshold below that budget still catches any
# *structural* divergence (wrong sample positions, masking, ordering).
TOL_REF = 5e-3
# With early termination active a flipped bin can also shift the
# termination point by a sample, compounding to a few samples'
# contribution on the affected pixel — still far below any structural
# divergence, but above the single-flip budget.
TOL_REF_ET = 2.5e-2


def _case(seed, azimuth, elevation, width=36, height=30):
    rng = np.random.default_rng(seed)
    shape = tuple(int(rng.integers(5, 17)) for _ in range(3))
    data = rng.random(shape).astype(np.float32) * 2.0 - 1.0
    cam = Camera.looking_at_volume(
        shape, width=width, height=height, azimuth_deg=azimuth, elevation_deg=elevation
    )
    tf = TransferFunction.supernova(-1.0, 1.0)
    return VolumeBlock.whole(data), cam, tf


def _assert_equivalent(p_new, p_ref, tol=TOL_REF):
    if p_new is None or p_ref is None:
        # One side rendered nothing: the other may differ only by a
        # below-tolerance residue (bin-edge flips near zero opacity).
        other = p_new or p_ref
        assert other is None or np.abs(other.rgba).max() < tol
        return
    assert p_new.rect == p_ref.rect
    assert p_new.depth == p_ref.depth
    assert np.abs(p_new.rgba - p_ref.rgba).max() < tol


class TestCompactedEqualsReference:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=-170, max_value=170),
        st.floats(min_value=-75, max_value=75),
        st.floats(min_value=0.3, max_value=1.6),
        st.sampled_from([0.95, 0.999, 1.0]),
    )
    def test_random_blocks_views_steps(self, seed, azimuth, elevation, step, et):
        block, cam, tf = _case(seed, azimuth, elevation)
        p_new = render_block(cam, block, tf, step=step, early_termination=et)
        p_ref = render_block_reference(cam, block, tf, step=step, early_termination=et)
        _assert_equivalent(p_new, p_ref, tol=TOL_REF if et == 1.0 else TOL_REF_ET)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.3, max_value=1.6),
    )
    def test_sample_counts_match_without_early_termination(self, seed, step):
        # With early termination off, both kernels must take *exactly*
        # the same samples — any drift means the globally aligned
        # sample-index bounds disagree.
        block, cam, tf = _case(seed, 25.0, 15.0)
        p_new = render_block(cam, block, tf, step=step, early_termination=1.0)
        p_ref = render_block_reference(cam, block, tf, step=step, early_termination=1.0)
        if p_new is None or p_ref is None:
            _assert_equivalent(p_new, p_ref)
            return
        assert p_new.samples == p_ref.samples

    def test_degenerate_thin_block(self):
        data = np.zeros((5, 1, 7), np.float32)
        data[:] = 0.8
        cam = Camera.looking_at_volume(data.shape, width=24, height=24)
        tf = TransferFunction.grayscale_ramp(-1.0, 1.0)
        p_new = render_block(cam, VolumeBlock.whole(data), tf, step=0.5)
        p_ref = render_block_reference(cam, VolumeBlock.whole(data), tf, step=0.5)
        _assert_equivalent(p_new, p_ref)


class TestRayPlanReuse:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=-170, max_value=170),
        st.floats(min_value=0.4, max_value=1.4),
    )
    def test_planned_render_is_bitwise_identical(self, seed, azimuth, step):
        # A precomputed RayPlan must not change the result at all: the
        # plan carries the same geometry the kernel would derive, so
        # planned and unplanned renders follow one code path.
        block, cam, tf = _case(seed, azimuth, 20.0)
        plan = build_ray_plan(cam, block.world_lo, block.world_hi, step)
        p_cold = render_block(cam, block, tf, step=step)
        p_warm = render_block(cam, block, tf, step=step, plan=plan)
        if p_cold is None or p_warm is None:
            assert p_cold is None and p_warm is None
            return
        assert p_cold.rect == p_warm.rect
        assert np.array_equal(p_cold.rgba, p_warm.rgba)
        assert p_cold.samples == p_warm.samples


def _intersect_scalar(origin, direction, lo, hi):
    """Per-axis scalar slab intersection (the obvious reference)."""
    t_enter, t_exit = 0.0, np.inf
    for a in range(3):
        if direction[a] == 0.0:
            if origin[a] < lo[a] or origin[a] > hi[a]:
                return np.inf, -np.inf
            continue
        t0 = (lo[a] - origin[a]) / direction[a]
        t1 = (hi[a] - origin[a]) / direction[a]
        t_enter = max(t_enter, min(t0, t1))
        t_exit = min(t_exit, max(t0, t1))
    return t_enter, t_exit


class TestVectorizedIntersectFixup:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
    def test_matches_scalar_reference_with_parallel_axes(self, seed, n_zero):
        # Force `n_zero` direction components to exactly 0.0 so the
        # vectorized axis-parallel fixup path is always exercised.
        rng = np.random.default_rng(seed)
        origins = rng.uniform(-4, 4, size=(32, 3))
        dirs = rng.uniform(-1, 1, size=(32, 3))
        for i in range(32):
            for a in rng.choice(3, size=n_zero, replace=False):
                dirs[i, a] = 0.0
        lo = np.array([-1.0, -1.5, -0.5])
        hi = np.array([1.0, 0.5, 1.5])
        t_enter, t_exit = ray_box_intersect(origins, dirs, lo, hi)
        for i in range(32):
            ref_enter, ref_exit = _intersect_scalar(origins[i], dirs[i], lo, hi)
            hit = t_exit[i] > t_enter[i]
            ref_hit = ref_exit > ref_enter
            assert hit == ref_hit
            if hit:
                # The vectorized path multiplies by a precomputed
                # reciprocal; the scalar reference divides — equal to
                # a couple of ULPs, not bitwise.
                assert np.isclose(t_enter[i], ref_enter, rtol=1e-12, atol=0.0)
                assert np.isclose(t_exit[i], ref_exit, rtol=1e-12, atol=0.0)
