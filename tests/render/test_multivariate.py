"""Multivariate rendering and multi-variable collective reads."""

import numpy as np
import pytest

from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle, collective_read_blocks_multi, plan_read_blocks
from repro.render import Camera, TransferFunction, VolumeBlock, blank_image, composite_over
from repro.render.decomposition import BlockDecomposition
from repro.render.multivariate import (
    MultivariateTransfer,
    render_block_multivar,
    render_multivar_serial,
)
from repro.utils.errors import ConfigError, FormatError

GRID = (16, 16, 16)


@pytest.fixture(scope="module")
def model():
    return SupernovaModel(GRID, seed=31)


@pytest.fixture(scope="module")
def mvtf(model):
    primary = TransferFunction.supernova(*model.value_range("vx"))
    lo, hi = model.value_range("density")
    return MultivariateTransfer(primary, gate_lo=lo + 0.3 * (hi - lo), gate_hi=hi)


class TestMultivariateTransfer:
    def test_gate_zeroes_low_modulator(self, mvtf):
        _rgb, ext = mvtf.sample(np.array([0.9]), np.array([-10.0]))
        assert ext[0] == 0.0

    def test_gate_passes_high_modulator(self, model, mvtf):
        primary = TransferFunction.supernova(*model.value_range("vx"))
        _rgb, base = primary.sample(np.array([0.9]))
        _rgb2, gated = mvtf.sample(np.array([0.9]), np.array([100.0]))
        assert gated[0] == pytest.approx(base[0])

    def test_invalid_gate(self, model):
        primary = TransferFunction.grayscale_ramp()
        with pytest.raises(ConfigError):
            MultivariateTransfer(primary, 1.0, 1.0)


class TestMultivariateRender:
    def test_parallel_equals_serial(self, model, mvtf):
        vx = model.field("vx")
        density = model.field("density")
        cam = Camera.looking_at_volume(GRID, width=36, height=32)
        ref = render_multivar_serial(cam, vx, density, mvtf, step=0.8)
        dec = BlockDecomposition(GRID, 8)
        partials = []
        for b in dec.blocks():
            rs, rc, gl = b.ghost_read(GRID, ghost=1)
            sl = tuple(slice(s, s + c) for s, c in zip(rs, rc))
            p_blk = VolumeBlock(vx[sl], GRID, b.start, b.count, gl)
            m_blk = VolumeBlock(density[sl], GRID, b.start, b.count, gl)
            p = render_block_multivar(cam, p_blk, m_blk, mvtf, step=0.8)
            if p is not None:
                partials.append(p)
        img = composite_over(blank_image(36, 32), partials)
        assert np.abs(img - ref).max() < 5e-3

    def test_gating_changes_image(self, model, mvtf):
        vx = model.field("vx")
        density = model.field("density")
        cam = Camera.looking_at_volume(GRID, width=24, height=24)
        gated = render_multivar_serial(cam, vx, density, mvtf, step=0.8)
        primary = TransferFunction.supernova(*model.value_range("vx"))
        from repro.render import render_volume_serial

        ungated = render_volume_serial(cam, vx, primary, step=0.8)
        assert not np.allclose(gated, ungated, atol=1e-3)
        # Gating removes material; total opacity cannot grow.
        assert gated[..., 3].sum() <= ungated[..., 3].sum() + 1e-3

    def test_mismatched_blocks_rejected(self, model, mvtf):
        cam = Camera.looking_at_volume(GRID, width=16, height=16)
        a = VolumeBlock.whole(model.field("vx"))
        b = VolumeBlock(model.field("density")[:8], GRID, (0, 0, 0), (8, 16, 16))
        with pytest.raises(ConfigError, match="same region"):
            render_block_multivar(cam, a, b, mvtf)


class TestMultiVariableRead:
    def test_reads_both_variables(self, model):
        nc = write_vh1_netcdf(model)
        handles = [NetCDFHandle(nc, "vx"), NetCDFHandle(nc, "density")]
        dec = BlockDecomposition(GRID, 8)
        blocks = [(b.start, b.count) for b in dec.blocks()]
        out, report = collective_read_blocks_multi(
            handles, blocks, IOHints(cb_buffer_size=4096, cb_nodes=2)
        )
        vx = model.field("vx")
        density = model.field("density")
        for (start, count), rank_vars in zip(blocks, out):
            sl = tuple(slice(s, s + c) for s, c in zip(start, count))
            assert np.array_equal(rank_vars["vx"], vx[sl])
            assert np.array_equal(rank_vars["density"], density[sl])
        assert report.requested_bytes == vx.nbytes + density.nbytes

    def test_combined_read_density_beats_single(self, model):
        """Wanting several record variables amortizes the interleaving:
        the combined read's density exceeds one variable's."""
        nc = write_vh1_netcdf(model)
        hints = IOHints(cb_buffer_size=1 << 14, cb_nodes=2)
        single = plan_read_blocks(NetCDFHandle(nc, "vx"), nprocs=8, hints=hints)
        dec = BlockDecomposition(GRID, 8)
        blocks = [(b.start, b.count) for b in dec.blocks()]
        handles = [NetCDFHandle(nc, n) for n in ("pressure", "density", "vx", "vy", "vz")]
        _out, combined = collective_read_blocks_multi(handles, blocks, hints)
        assert combined.density > 1.5 * single.density
        assert combined.density > 0.9

    def test_different_files_rejected(self, model):
        nc1 = write_vh1_netcdf(model)
        nc2 = write_vh1_netcdf(model)
        with pytest.raises(FormatError, match="same file"):
            collective_read_blocks_multi(
                [NetCDFHandle(nc1, "vx"), NetCDFHandle(nc2, "vy")],
                [((0, 0, 0), GRID)],
            )

    def test_empty_handles_rejected(self):
        with pytest.raises(FormatError, match="at least one"):
            collective_read_blocks_multi([], [((0, 0, 0), (4, 4, 4))])
