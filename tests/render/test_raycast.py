"""Ray casting: the block-parallel == serial invariant and basics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.image import blank_image, composite_over
from repro.render.raycast import ray_box_intersect, render_block, render_volume_serial
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.utils.errors import ConfigError

TOL = 5e-3  # early-termination threshold dominates the error budget


def render_parallel(data, cam, tf, nblocks, step):
    grid = data.shape
    dec = BlockDecomposition(grid, nblocks)
    partials = []
    for b in dec.blocks():
        rs, rc, gl = b.ghost_read(grid, ghost=1)
        sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
        vb = VolumeBlock(sub, grid, b.start, b.count, gl)
        p = render_block(cam, vb, tf, step=step)
        if p is not None:
            partials.append(p)
    return composite_over(blank_image(cam.width, cam.height), partials)


class TestRayBoxIntersect:
    def test_hit_through_center(self):
        o = np.array([[0.0, 0.0, -5.0]])
        d = np.array([[0.0, 0.0, 1.0]])
        t0, t1 = ray_box_intersect(o, d, np.array([-1.0, -1, -1]), np.array([1.0, 1, 1]))
        assert t0[0] == pytest.approx(4.0)
        assert t1[0] == pytest.approx(6.0)

    def test_miss(self):
        o = np.array([[10.0, 10.0, -5.0]])
        d = np.array([[0.0, 0.0, 1.0]])
        t0, t1 = ray_box_intersect(o, d, np.array([-1.0, -1, -1]), np.array([1.0, 1, 1]))
        assert t1[0] <= t0[0]

    def test_origin_inside(self):
        o = np.array([[0.0, 0.0, 0.0]])
        d = np.array([[1.0, 0.0, 0.0]])
        t0, t1 = ray_box_intersect(o, d, np.array([-1.0, -1, -1]), np.array([1.0, 1, 1]))
        assert t0[0] == 0.0
        assert t1[0] == pytest.approx(1.0)

    def test_axis_parallel_outside_slab_misses(self):
        o = np.array([[0.0, 5.0, -5.0]])  # y outside the box, dy == 0
        d = np.array([[0.0, 0.0, 1.0]])
        t0, t1 = ray_box_intersect(o, d, np.array([-1.0, -1, -1]), np.array([1.0, 1, 1]))
        assert t1[0] <= t0[0]


class TestRenderBlock:
    def test_empty_volume_renders_nothing(self, small_camera, gray_tf):
        vb = VolumeBlock.whole(np.zeros((8, 8, 8), np.float32))
        assert render_block(small_camera, vb, gray_tf) is None

    def test_opaque_volume_saturates(self, small_camera):
        tf = TransferFunction.grayscale_ramp()
        vb = VolumeBlock.whole(np.ones((16, 16, 16), np.float32))
        p = render_block(small_camera, vb, tf, step=0.5)
        assert p is not None
        assert p.rgba[..., 3].max() > 0.95
        assert p.samples > 0

    def test_bad_step_rejected(self, small_camera, gray_tf):
        vb = VolumeBlock.whole(np.ones((4, 4, 4), np.float32))
        with pytest.raises(ConfigError):
            render_block(small_camera, vb, gray_tf, step=0)

    def test_alpha_in_unit_range(self, small_camera, gray_tf, rng):
        vb = VolumeBlock.whole(rng.random((12, 12, 12)).astype(np.float32))
        p = render_block(small_camera, vb, gray_tf, step=0.5)
        assert p is not None
        assert np.all(p.rgba[..., 3] >= 0) and np.all(p.rgba[..., 3] <= 1 + 1e-6)
        # Premultiplied: colour never exceeds alpha (gray ramp).
        assert np.all(p.rgba[..., :3] <= p.rgba[..., 3:4] + 1e-5)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("nblocks", (2, 3, 4, 8, 12))
    def test_block_counts(self, nblocks, rng):
        data = rng.random((16, 16, 16)).astype(np.float32)
        cam = Camera.looking_at_volume(data.shape, width=40, height=36)
        tf = TransferFunction.grayscale_ramp()
        ref = render_volume_serial(cam, data, tf, step=0.6)
        img = render_parallel(data, cam, tf, nblocks, step=0.6)
        assert np.abs(img - ref).max() < TOL

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([2, 4, 8]),
        st.floats(min_value=0.4, max_value=1.5),
        st.floats(min_value=-80, max_value=80),
        st.floats(min_value=-40, max_value=60),
    )
    def test_random_views_and_steps(self, seed, nblocks, step, azimuth, elevation):
        rng = np.random.default_rng(seed)
        data = rng.random((12, 12, 12)).astype(np.float32)
        cam = Camera.looking_at_volume(
            data.shape, width=32, height=32, azimuth_deg=azimuth, elevation_deg=elevation
        )
        tf = TransferFunction.grayscale_ramp()
        ref = render_volume_serial(cam, data, tf, step=step)
        img = render_parallel(data, cam, tf, nblocks, step=step)
        assert np.abs(img - ref).max() < TOL

    def test_supernova_transfer_function(self, supernova):
        data = supernova.field("vx")
        cam = Camera.looking_at_volume(data.shape, width=40, height=40)
        tf = TransferFunction.supernova(*supernova.value_range("vx"))
        ref = render_volume_serial(cam, data, tf, step=0.7)
        img = render_parallel(data, cam, tf, 8, step=0.7)
        assert np.abs(img - ref).max() < TOL

    def test_no_early_termination_is_tighter(self, rng):
        data = rng.random((12, 12, 12)).astype(np.float32)
        cam = Camera.looking_at_volume(data.shape, width=24, height=24)
        tf = TransferFunction.grayscale_ramp()
        ref = render_volume_serial(cam, data, tf, step=0.5, early_termination=1.0)
        dec = BlockDecomposition(data.shape, 8)
        partials = []
        for b in dec.blocks():
            rs, rc, gl = b.ghost_read(data.shape, ghost=1)
            sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
            p = render_block(
                cam, VolumeBlock(sub, data.shape, b.start, b.count, gl), tf, 0.5, 1.0
            )
            if p is not None:
                partials.append(p)
        img = composite_over(blank_image(24, 24), partials)
        assert np.abs(img - ref).max() < 2e-5
