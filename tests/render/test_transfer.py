"""Transfer functions."""

import numpy as np
import pytest

from repro.render.transfer import TransferFunction
from repro.utils.errors import ConfigError


class TestTransferFunction:
    def test_grayscale_endpoints(self):
        tf = TransferFunction.grayscale_ramp()
        rgb, ext = tf.sample(np.array([0.0, 1.0]))
        assert np.allclose(rgb[0], 0.0)
        assert np.allclose(rgb[1], 1.0, atol=1e-3)
        assert ext[0] == pytest.approx(0.0, abs=1e-2)
        assert ext[1] == pytest.approx(tf.max_extinction, rel=1e-2)

    def test_values_clamped_to_domain(self):
        tf = TransferFunction.grayscale_ramp(vmin=0, vmax=1)
        rgb_lo, _ = tf.sample(np.array([-5.0]))
        rgb_hi, _ = tf.sample(np.array([+5.0]))
        assert np.allclose(rgb_lo, 0.0)
        assert np.allclose(rgb_hi, 1.0, atol=1e-3)

    def test_extinction_nonnegative(self):
        tf = TransferFunction.supernova()
        _rgb, ext = tf.sample(np.linspace(-2, 2, 100))
        assert np.all(ext >= 0)

    def test_supernova_near_zero_transparent(self):
        tf = TransferFunction.supernova(vmin=-1, vmax=1)
        _rgb, ext = tf.sample(np.array([0.0]))
        assert ext[0] < 0.1 * tf.max_extinction

    def test_monotone_interpolation_between_points(self):
        pts = np.array([[0.0, 0, 0, 0, 0.0], [1.0, 1, 1, 1, 1.0]])
        tf = TransferFunction(pts)
        _rgb, ext = tf.sample(np.linspace(0, 1, 50))
        assert np.all(np.diff(ext) >= -1e-12)

    def test_invalid_controls_rejected(self):
        with pytest.raises(ConfigError):
            TransferFunction(np.zeros((1, 5)))  # too few points
        with pytest.raises(ConfigError):
            TransferFunction(np.array([[0.5, 0, 0, 0, 0], [0.5, 1, 1, 1, 1]]))
        with pytest.raises(ConfigError):
            TransferFunction.grayscale_ramp(vmin=1.0, vmax=1.0)

    def test_custom_domain(self):
        tf = TransferFunction.grayscale_ramp(vmin=-10, vmax=10)
        rgb_mid, _ = tf.sample(np.array([0.0]))
        assert np.allclose(rgb_mid, 0.5, atol=0.01)
