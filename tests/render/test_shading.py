"""Gradient shading: physics sanity and block-parallel exactness."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.image import blank_image, composite_over
from repro.render.shading import gradient_at, render_block_shaded, render_shaded_serial
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.utils.errors import ConfigError

GRID = (16, 16, 16)


class TestGradient:
    def test_linear_field_constant_gradient(self):
        z, y, x = np.meshgrid(*[np.arange(8.0)] * 3, indexing="ij")
        data = (3 * x + 2 * y - z).astype(np.float32)
        block = VolumeBlock.whole(data)
        pts = np.array([[3.0, 3.0, 3.0], [2.5, 4.5, 3.5]])
        g = gradient_at(block, pts, h=1.0)
        assert np.allclose(g, [[3.0, 2.0, -1.0]] * 2, atol=1e-5)

    def test_invalid_h(self):
        block = VolumeBlock.whole(np.zeros((4, 4, 4), np.float32))
        with pytest.raises(ConfigError):
            gradient_at(block, np.zeros((1, 3)), h=0)


class TestShadedRender:
    def test_shading_darkens_oblique_surfaces(self, rng):
        """Shaded image differs from unshaded and never brightens
        beyond the ambient+diffuse ceiling."""
        data = rng.random(GRID).astype(np.float32)
        cam = Camera.looking_at_volume(GRID, width=32, height=32)
        tf = TransferFunction.grayscale_ramp()
        shaded = render_shaded_serial(cam, data, tf, step=0.7)
        from repro.render.raycast import render_volume_serial

        flat = render_volume_serial(cam, data, tf, step=0.7)
        assert not np.allclose(shaded, flat, atol=1e-3)
        # Same opacity field; only colour changes.
        assert np.allclose(shaded[..., 3], flat[..., 3], atol=1e-5)

    @pytest.mark.parametrize("nblocks", (4, 8))
    def test_parallel_equals_serial_with_ghost2(self, rng, nblocks):
        """Gradient stencils reach one voxel past the sample, so two
        ghost layers make block-parallel shading exact."""
        data = rng.random(GRID).astype(np.float32)
        cam = Camera.looking_at_volume(GRID, width=36, height=30)
        tf = TransferFunction.grayscale_ramp()
        ref = render_shaded_serial(cam, data, tf, step=0.7)
        dec = BlockDecomposition(GRID, nblocks)
        partials = []
        for b in dec.blocks():
            rs, rc, gl = b.ghost_read(GRID, ghost=2)
            sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
            p = render_block_shaded(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, 0.7)
            if p is not None:
                partials.append(p)
        img = composite_over(blank_image(36, 30), partials)
        assert np.abs(img - ref).max() < 5e-3

    def test_custom_light_direction_changes_image(self, rng):
        data = rng.random(GRID).astype(np.float32)
        cam = Camera.looking_at_volume(GRID, width=24, height=24)
        tf = TransferFunction.grayscale_ramp()
        head = render_shaded_serial(cam, data, tf, step=0.8)
        side = render_shaded_serial(cam, data, tf, step=0.8, light_dir=(1.0, 0.0, 0.0))
        assert not np.allclose(head, side, atol=1e-4)

    def test_zero_light_rejected(self, rng):
        data = rng.random((8, 8, 8)).astype(np.float32)
        cam = Camera.looking_at_volume((8, 8, 8), width=8, height=8)
        with pytest.raises(ConfigError, match="light"):
            render_block_shaded(
                cam, VolumeBlock.whole(data), TransferFunction.grayscale_ramp(),
                light_dir=(0, 0, 0),
            )


class TestTrimming:
    def test_trim_roundtrip_identical_composite(self, rng):
        """Trimmed pieces produce the identical final image."""
        from repro.compositing.directsend import assemble_final_image, direct_send_compose
        from repro.compositing.schedule import schedule_from_geometry
        from repro.render.raycast import render_block
        from repro.vmpi import MPIWorld

        data = rng.random(GRID).astype(np.float32)
        cam = Camera.looking_at_volume(GRID, width=40, height=40)
        tf = TransferFunction.grayscale_ramp()
        dec = BlockDecomposition(GRID, 8)
        sched = schedule_from_geometry(dec, cam, 8)

        def program(ctx, compress):
            b = dec.block(ctx.rank)
            rs, rc, gl = b.ghost_read(GRID, ghost=1)
            sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
            partial = render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, 0.8)
            tile = yield from direct_send_compose(ctx, partial, sched, compress=compress)
            return (yield from assemble_final_image(ctx, tile, sched, root=0))

        world = MPIWorld.for_cores(8)
        plain = world.run(program, False)
        plain_bytes = plain.bytes_sent
        compressed = world.run(program, True)
        assert np.allclose(plain[0], compressed[0], atol=1e-6)
        assert compressed.bytes_sent < plain_bytes  # smaller messages

    def test_trimmed_bbox_exact(self):
        from repro.render.image import PartialImage

        rgba = np.zeros((6, 8, 4), np.float32)
        rgba[2:4, 3:6, 3] = 0.5
        p = PartialImage((10, 20, 8, 6), rgba, depth=1.0)
        t = p.trimmed()
        assert t.rect == (13, 22, 3, 2)
        assert np.array_equal(t.rgba, rgba[2:4, 3:6])

    def test_trim_fully_transparent(self):
        from repro.render.image import PartialImage

        p = PartialImage((0, 0, 4, 4), np.zeros((4, 4, 4), np.float32), depth=1.0)
        assert p.trimmed().empty

    def test_trim_noop_when_full(self):
        from repro.render.image import PartialImage

        rgba = np.full((2, 2, 4), 0.5, np.float32)
        p = PartialImage((0, 0, 2, 2), rgba, depth=1.0)
        assert p.trimmed() is p
