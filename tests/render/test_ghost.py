"""Message-based ghost exchange vs slicing the global array."""

import numpy as np
import pytest

from repro.render.decomposition import BlockDecomposition
from repro.render.ghost import ghost_exchange
from repro.utils.errors import CommunicationError
from repro.vmpi import MPIWorld


def run_exchange(data, nblocks, block_grid=None, ghost=1):
    grid = data.shape
    dec = BlockDecomposition(grid, nblocks, block_grid=block_grid)

    def program(ctx):
        b = dec.block(ctx.rank)
        sl = tuple(slice(s, s + c) for s, c in zip(b.start, b.count))
        local = np.ascontiguousarray(data[sl])
        padded, ghost_lo = yield from ghost_exchange(ctx, local, dec, ghost)
        return padded, ghost_lo

    return dec, MPIWorld.for_cores(nblocks).run(program)


@pytest.mark.parametrize("nblocks,block_grid", [(8, (2, 2, 2)), (4, (1, 2, 2)), (12, (3, 2, 2)), (6, (6, 1, 1))])
def test_exchange_matches_global_slices(rng, nblocks, block_grid):
    """Every rank's padded block equals the global array's ghost window —
    including edge and corner voxels from diagonal neighbours."""
    data = rng.random((12, 12, 12)).astype(np.float32)
    dec, res = run_exchange(data, nblocks, block_grid)
    for rank, (padded, ghost_lo) in enumerate(res.values):
        b = dec.block(rank)
        rs, rc, gl = b.ghost_read((12, 12, 12), ghost=1)
        assert ghost_lo == gl
        expected = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
        assert np.array_equal(padded, expected), rank


def test_wider_ghost(rng):
    data = rng.random((16, 16, 16)).astype(np.float32)
    dec, res = run_exchange(data, 8, (2, 2, 2), ghost=2)
    for rank, (padded, ghost_lo) in enumerate(res.values):
        b = dec.block(rank)
        rs, rc, gl = b.ghost_read((16, 16, 16), ghost=2)
        assert ghost_lo == gl
        expected = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
        assert np.array_equal(padded, expected)


def test_single_block_no_messages(rng):
    data = rng.random((8, 8, 8)).astype(np.float32)
    _dec, res = run_exchange(data, 1, (1, 1, 1))
    padded, ghost_lo = res[0]
    assert np.array_equal(padded, data)
    assert ghost_lo == (0, 0, 0)
    assert res.messages == 0


def test_shape_mismatch_rejected(rng):
    data = rng.random((8, 8, 8)).astype(np.float32)
    dec = BlockDecomposition((8, 8, 8), 8)

    def program(ctx):
        yield from ghost_exchange(ctx, np.zeros((2, 2, 2), np.float32), dec)

    with pytest.raises(CommunicationError, match="does not match"):
        MPIWorld.for_cores(8).run(program)


def test_rank_count_mismatch_rejected(rng):
    dec = BlockDecomposition((8, 8, 8), 8)

    def program(ctx):
        yield from ghost_exchange(ctx, np.zeros((4, 4, 4), np.float32), dec)

    with pytest.raises(CommunicationError, match="one block per rank"):
        MPIWorld.for_cores(4).run(program)


from hypothesis import given, settings, strategies as st


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from([(1, 1, 4), (2, 2, 1), (1, 2, 2), (2, 1, 2), (4, 1, 1)]),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=2),
)
def test_ghost_exchange_property(block_grid, seed, ghost):
    """Random grids, block shapes, and ghost widths all reproduce the
    global array's ghost windows exactly."""
    rng = np.random.default_rng(seed)
    grid = (8, 8, 8)
    data = rng.random(grid).astype(np.float32)
    nblocks = block_grid[0] * block_grid[1] * block_grid[2]
    dec = BlockDecomposition(grid, nblocks, block_grid=block_grid)

    def program(ctx):
        b = dec.block(ctx.rank)
        sl = tuple(slice(s, s + c) for s, c in zip(b.start, b.count))
        padded, gl = yield from ghost_exchange(ctx, np.ascontiguousarray(data[sl]), dec, ghost)
        return padded, gl

    res = MPIWorld.for_cores(nblocks).run(program)
    for rank, (padded, gl) in enumerate(res.values):
        b = dec.block(rank)
        rs, rc, expected_gl = b.ghost_read(grid, ghost=ghost)
        assert gl == expected_gl
        expected = data[rs[0]:rs[0]+rc[0], rs[1]:rs[1]+rc[1], rs[2]:rs[2]+rc[2]]
        assert np.array_equal(padded, expected)
