"""Cross-module integration: full frames across formats, policies,
compositing algorithms, and views, all against the serial oracle."""

import numpy as np
import pytest

from repro.compositing.binaryswap import binary_swap_compose, binary_swap_gather
from repro.compositing.policy import IDENTITY_POLICY, fixed_policy
from repro.core import ParallelVolumeRenderer
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle
from repro.render import (
    BlockDecomposition,
    Camera,
    TransferFunction,
    VolumeBlock,
    render_block,
    render_volume_serial,
)
from repro.render.image import image_to_ppm
from repro.vmpi import MPIWorld

GRID = (20, 20, 20)
STEP = 0.9


@pytest.fixture(scope="module")
def model():
    return SupernovaModel(GRID, seed=21, time=0.5)


@pytest.fixture(scope="module")
def nc(model):
    return write_vh1_netcdf(model)


@pytest.mark.parametrize("variable", ("vx", "density", "pressure"))
def test_any_variable_renders(model, nc, variable):
    cam = Camera.looking_at_volume(GRID, width=32, height=32)
    tf = TransferFunction.supernova(*model.value_range(variable))
    handle = NetCDFHandle(nc, variable)
    world = MPIWorld.for_cores(8)
    pvr = ParallelVolumeRenderer(world, cam, tf, step=STEP, hints=IOHints(cb_buffer_size=2048, cb_nodes=2))
    res = pvr.render_frame(handle)
    ref = render_volume_serial(cam, model.field(variable), tf, step=STEP)
    assert np.abs(res.image - ref).max() < 5e-3


@pytest.mark.parametrize("azimuth", (-60, 0, 45, 120))
def test_views_around_the_volume(model, nc, azimuth):
    cam = Camera.looking_at_volume(GRID, width=28, height=28, azimuth_deg=azimuth)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    handle = NetCDFHandle(nc, "vx")
    pvr = ParallelVolumeRenderer(MPIWorld.for_cores(8), cam, tf, step=STEP)
    res = pvr.render_frame(handle)
    ref = render_volume_serial(cam, model.field("vx"), tf, step=STEP)
    assert np.abs(res.image - ref).max() < 5e-3


def test_direct_send_and_binary_swap_agree(model):
    """The two compositing algorithms produce the same image."""
    cam = Camera.looking_at_volume(GRID, width=32, height=32)
    tf = TransferFunction.grayscale_ramp(0, 1.6)
    data = model.field("pressure")
    dec = BlockDecomposition(GRID, 8, block_grid=(2, 2, 2))

    def make_partial(rank):
        b = dec.block(rank)
        rs, rc, gl = b.ghost_read(GRID, ghost=1)
        sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
        return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, step=STEP)

    def bs_program(ctx):
        partial = make_partial(ctx.rank)
        region, img = yield from binary_swap_compose(ctx, partial, dec, cam)
        return (yield from binary_swap_gather(ctx, region, img, 32, 32, root=0))

    bs = MPIWorld.for_cores(8).run(bs_program)[0]

    from repro.compositing.directsend import assemble_final_image, direct_send_compose
    from repro.compositing.schedule import schedule_from_geometry

    sched = schedule_from_geometry(dec, cam, 8)

    def ds_program(ctx):
        partial = make_partial(ctx.rank)
        tile = yield from direct_send_compose(ctx, partial, sched)
        return (yield from assemble_final_image(ctx, tile, sched, root=0))

    ds = MPIWorld.for_cores(8).run(ds_program)[0]
    assert np.allclose(bs, ds, atol=1e-5)


def test_policies_change_time_not_pixels(model, nc):
    cam = Camera.looking_at_volume(GRID, width=24, height=24)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    handle = NetCDFHandle(nc, "vx")
    images = {}
    timings = {}
    for name, policy in [("all", IDENTITY_POLICY), ("two", fixed_policy(2))]:
        pvr = ParallelVolumeRenderer(MPIWorld.for_cores(8), cam, tf, step=STEP, policy=policy)
        res = pvr.render_frame(handle)
        images[name] = res.image
        timings[name] = res.timing
    assert np.allclose(images["all"], images["two"], atol=1e-5)
    assert timings["all"].composite_s != timings["two"].composite_s


def test_ppm_export(model, nc, tmp_path):
    cam = Camera.looking_at_volume(GRID, width=24, height=20)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    pvr = ParallelVolumeRenderer(MPIWorld.for_cores(4), cam, tf, step=STEP)
    res = pvr.render_frame(NetCDFHandle(nc, "vx"))
    ppm = image_to_ppm(res.image)
    assert ppm.startswith(b"P6\n24 20\n255\n")
    assert len(ppm) == len(b"P6\n24 20\n255\n") + 24 * 20 * 3
    (tmp_path / "img.ppm").write_bytes(ppm)


def test_upsampled_timestep_end_to_end(model):
    """The paper's 2x upsampling feeds the same pipeline."""
    from repro.data.upsample import upsample_trilinear
    from repro.formats.raw import RawVolume
    from repro.pio.reader import RawHandle

    up = upsample_trilinear(model.field("vx"), 2)
    handle = RawHandle(RawVolume.write(up))
    cam = Camera.looking_at_volume(up.shape, width=32, height=32)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    pvr = ParallelVolumeRenderer(MPIWorld.for_cores(8), cam, tf, step=1.2)
    res = pvr.render_frame(handle)
    ref = render_volume_serial(cam, up, tf, step=1.2)
    assert np.abs(res.image - ref).max() < 5e-3


def test_sixty_four_rank_frame(model, nc):
    """A larger functional run: 64 ranks, compositor-limited to 16."""
    from repro.compositing.policy import fixed_policy

    cam = Camera.looking_at_volume(GRID, width=48, height=48)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    pvr = ParallelVolumeRenderer(
        MPIWorld.for_cores(64), cam, tf, step=STEP, policy=fixed_policy(16),
        hints=IOHints(cb_buffer_size=4096, cb_nodes=4),
    )
    res = pvr.render_frame(NetCDFHandle(nc, "vx"))
    ref = render_volume_serial(cam, model.field("vx"), tf, step=STEP)
    assert np.abs(res.image - ref).max() < 5e-3
    assert res.num_compositors == 16
    assert res.schedule.num_renderers == 64
