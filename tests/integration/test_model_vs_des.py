"""Consistency between the functional (DES) path and the analytic model.

The same geometry must produce the same message schedule in both
worlds, and configuration *orderings* (which compositor count is
cheaper) must agree — that is what makes the paper-scale model's
conclusions trustworthy.
"""

import numpy as np
import pytest

from repro.compositing.directsend import direct_send_compose
from repro.compositing.policy import fixed_policy
from repro.compositing.schedule import schedule_from_geometry
from repro.model.composite import CompositeTimeModel, vectorized_schedule_stats
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.image import PartialImage
from repro.render.raycast import render_block
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)


@pytest.fixture(scope="module")
def scene(request):
    rng = np.random.default_rng(13)
    data = rng.random(GRID).astype(np.float32)
    cam = Camera.looking_at_volume(GRID, width=64, height=64)
    tf = TransferFunction.grayscale_ramp()
    return data, cam, tf


def des_composite_run(scene, nprocs, m):
    """Run ONLY the compositing phase functionally; return (elapsed, messages)."""
    data, cam, tf = scene
    dec = BlockDecomposition(GRID, nprocs)
    sched = schedule_from_geometry(dec, cam, m)

    partials = []
    for r in range(nprocs):
        b = dec.block(r)
        rs, rc, gl = b.ghost_read(GRID, ghost=1)
        sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
        partials.append(render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, 0.8))

    def program(ctx):
        tile = yield from direct_send_compose(ctx, partials[ctx.rank], sched)
        return tile is not None

    world = MPIWorld.for_cores(nprocs)
    res = world.run(program)
    return res.elapsed_s, res.messages, sched


class TestScheduleConsistency:
    @pytest.mark.parametrize("nprocs,m", [(8, 8), (16, 16), (16, 4), (64, 8)])
    def test_des_messages_equal_schedule_minus_self_sends(self, scene, nprocs, m):
        _elapsed, messages, sched = des_composite_run(scene, nprocs, m)
        self_sends = sum(1 for msg in sched.messages if msg.src == msg.tile)
        assert messages == sched.total_messages - self_sends

    @pytest.mark.parametrize("nprocs,m", [(27, 27), (27, 9), (64, 16)])
    def test_vectorized_equals_object_schedule(self, scene, nprocs, m):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, nprocs)
        functional = schedule_from_geometry(dec, cam, m)
        vectorized = vectorized_schedule_stats(dec, cam, m)
        assert vectorized.total_messages == functional.total_messages
        assert vectorized.total_bytes == functional.total_bytes


class TestOrderingConsistency:
    def test_model_and_des_agree_on_bytes_moved(self, scene):
        """Fewer compositors -> fewer wire bytes, in both worlds."""
        _data, cam, _tf = scene
        model = CompositeTimeModel()
        dec = BlockDecomposition(GRID, 16)
        priced = {
            m: model.price(vectorized_schedule_stats(dec, cam, m)) for m in (16, 4)
        }
        assert priced[4].total_bytes < priced[16].total_bytes

        des_bytes = {}
        for m in (16, 4):
            world_run = des_composite_run(scene, 16, m)
            des_bytes[m] = world_run[1]
        assert des_bytes[4] < des_bytes[16]

    def test_payload_sizes_match_schedule_estimate(self, scene):
        """The schedule's pixel-derived sizes bound the real cropped
        partial images (footprints are conservative bboxes)."""
        data, cam, tf = scene
        nprocs = 8
        dec = BlockDecomposition(GRID, nprocs)
        sched = schedule_from_geometry(dec, cam, nprocs)
        for r in range(nprocs):
            b = dec.block(r)
            rs, rc, gl = b.ghost_read(GRID, ghost=1)
            sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
            partial = render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, 0.8)
            if partial is None:
                continue
            for msg in sched.outgoing(r):
                piece = partial.crop(sched.tiles.tile(msg.tile))
                assert isinstance(piece, PartialImage)
                assert piece.rect[2] * piece.rect[3] <= msg.pixels
