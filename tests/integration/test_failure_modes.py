"""Failure injection: hangs, malformed files, misuse — loud, not silent."""

import numpy as np
import pytest

from repro.data import SupernovaModel, write_vh1_netcdf
from repro.formats.netcdf import NetCDFFile
from repro.pio import IOHints, NetCDFHandle, collective_read_blocks
from repro.storage.store import MemoryStore
from repro.utils.errors import (
    CommunicationError,
    DeadlockError,
    FormatError,
    StorageError,
)
from repro.vmpi import MPIWorld


class TestCommunicationFailures:
    def test_unmatched_recv_deadlocks_with_rank_names(self):
        def program(ctx):
            if ctx.rank == 2:
                yield from ctx.recv(source=0, tag=1)  # nobody sends
            else:
                yield from ctx.compute(0.001)
            return None

        with pytest.raises(DeadlockError, match="rank2"):
            MPIWorld.for_cores(4).run(program)

    def test_partial_barrier_deadlocks(self):
        def program(ctx):
            if ctx.rank % 2 == 0:
                yield from ctx.barrier()
            return None

        with pytest.raises(DeadlockError):
            MPIWorld.for_cores(4).run(program)

    def test_orphan_message_reported(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send("lost", dest=1, tag=5)
            yield from ctx.compute(0.01)
            return None

        with pytest.raises(CommunicationError, match="never received"):
            MPIWorld.for_cores(2).run(program)

    def test_leak_check_can_be_disabled(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send("lost", dest=1, tag=5)
            yield from ctx.compute(0.01)
            return ctx.rank

        res = MPIWorld.for_cores(2).run(program, check_leaks=False)
        assert res.values == [0, 1]


class TestMalformedFiles:
    def test_truncated_header(self):
        model = SupernovaModel((6, 6, 6), seed=1)
        raw = write_vh1_netcdf(model).store.getvalue()
        with pytest.raises(FormatError, match="truncated"):
            NetCDFFile.from_bytes(raw[:40])

    def test_corrupted_tag(self):
        model = SupernovaModel((6, 6, 6), seed=1)
        raw = bytearray(write_vh1_netcdf(model).store.getvalue())
        raw[8] = 0x7F  # clobber the dim_list tag
        with pytest.raises(FormatError):
            NetCDFFile.from_bytes(bytes(raw))

    def test_truncated_data_region(self):
        """A file whose header promises more data than exists."""
        model = SupernovaModel((6, 6, 6), seed=1)
        raw = write_vh1_netcdf(model).store.getvalue()
        nc = NetCDFFile(MemoryStore(raw[: len(raw) // 2]))
        with pytest.raises(StorageError, match="beyond end"):
            nc.read_variable("vz")


class TestPipelineMisuse:
    def test_block_request_outside_variable(self):
        model = SupernovaModel((8, 8, 8), seed=1)
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        with pytest.raises(FormatError):
            collective_read_blocks(handle, [((0, 0, 0), (9, 8, 8))], IOHints())

    def test_wrong_rank_count_vs_blocks(self):
        """More ranks than voxels along an axis fails loudly."""
        from repro.core import ParallelVolumeRenderer
        from repro.render import Camera, TransferFunction
        from repro.utils.errors import ConfigError

        model = SupernovaModel((4, 4, 4), seed=1)
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        cam = Camera.looking_at_volume((4, 4, 4), width=16, height=16)
        pvr = ParallelVolumeRenderer(
            MPIWorld.for_cores(256), cam, TransferFunction.grayscale_ramp()
        )
        with pytest.raises(ConfigError):
            pvr.render_frame(handle)

    def test_nan_data_still_terminates(self):
        """NaNs in data must not hang or crash the renderer."""
        from repro.render import Camera, TransferFunction, VolumeBlock, render_block

        data = np.full((8, 8, 8), np.nan, dtype=np.float32)
        cam = Camera.looking_at_volume((8, 8, 8), width=16, height=16)
        tf = TransferFunction.grayscale_ramp()
        result = render_block(cam, VolumeBlock.whole(data), tf, step=1.0)
        if result is not None:
            assert result.rgba.shape[2] == 4
