"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.upsample import upsample_trilinear
from repro.formats.h5lite import H5LiteWriter
from repro.formats.netcdf import NetCDFFile, NetCDFWriter
from repro.pio.hints import IOHints
from repro.pio.twophase import TwoPhaseReader, merge_intervals
from repro.storage.store import MemoryStore
from repro.storage.stripedfs import StripedFile

shapes3 = st.tuples(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
)


class TestFormatRoundTrips:
    @settings(max_examples=25, deadline=None)
    @given(
        shapes3,
        st.sampled_from([np.float32, np.float64, np.int16, np.int32]),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_cdf5_roundtrip(self, shape, dtype, seed):
        rng = np.random.default_rng(seed)
        data = (rng.random(shape) * 100).astype(dtype)
        w = NetCDFWriter(version=5)
        w.create_dimension("z", None)
        w.create_dimension("y", shape[1])
        w.create_dimension("x", shape[2])
        w.create_variable("v", dtype, ("z", "y", "x"))
        w.set_variable_data("v", data)
        nc = NetCDFFile.from_bytes(w.write().store.getvalue())
        assert np.array_equal(nc.read_variable("v"), data)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(shapes3, min_size=1, max_size=4),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_h5lite_multi_dataset_roundtrip(self, shapes, seed):
        rng = np.random.default_rng(seed)
        w = H5LiteWriter()
        expect = {}
        for i, shape in enumerate(shapes):
            expect[f"d{i}"] = rng.random(shape).astype(np.float32)
            w.create_dataset(f"d{i}", expect[f"d{i}"])
        f = w.write()
        for name, data in expect.items():
            assert np.array_equal(f.read_dataset(name), data)

    @settings(max_examples=25, deadline=None)
    @given(shapes3, st.sampled_from([2, 3]), st.integers(min_value=0, max_value=10**6))
    def test_upsample_preserves_bounds_and_endpoints(self, shape, factor, seed):
        rng = np.random.default_rng(seed)
        data = rng.random(shape).astype(np.float32)
        out = upsample_trilinear(data, factor)
        assert out.shape == tuple(s * factor for s in shape)
        assert out.min() >= data.min() - 1e-6
        assert out.max() <= data.max() + 1e-6
        assert out[0, 0, 0] == pytest.approx(data[0, 0, 0])
        assert out[-1, -1, -1] == pytest.approx(data[-1, -1, -1])


class TestCollectiveIORoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),  # slot
                st.integers(min_value=1, max_value=97),  # length
            ),
            min_size=1,
            max_size=12,
            unique_by=lambda t: t[0],
        ),
        st.integers(min_value=64, max_value=1024),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_collective_write_then_read_roundtrip(self, slots, buf, naggs, seed):
        """Disjoint writes followed by a collective read of the same
        ranges return exactly the written bytes, for any hints."""
        rng = np.random.default_rng(seed)
        # Slot k owns byte range [k*100, k*100+len): disjoint by design.
        writes = []
        for slot, length in slots:
            data = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
            writes.append((slot * 100, data))
        reader = TwoPhaseReader(
            StripedFile(MemoryStore()), IOHints(cb_buffer_size=buf, cb_nodes=naggs)
        )
        reader.collective_write([[wr] for wr in writes])
        ranges = [[(off, len(data))] for off, data in writes]
        out, _plan = reader.collective_read(ranges)
        for got, (_off, data) in zip(out, writes):
            assert got == data

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4000),
                st.integers(min_value=0, max_value=500),
            ),
            max_size=10,
        ),
        st.integers(min_value=64, max_value=2048),
    )
    def test_collective_read_returns_exact_bytes(self, ranges, buf):
        base = bytes(range(256)) * 20  # 5120 bytes of known content
        reader = TwoPhaseReader(
            StripedFile(MemoryStore(base)), IOHints(cb_buffer_size=buf, cb_nodes=2)
        )
        per_rank = [[r] for r in ranges]
        out, plan = reader.collective_read(per_rank)
        for got, (off, length) in zip(out, ranges):
            assert got == base[off : off + length]
        # Physical reads cover at least the unique requested bytes.
        unique = sum(l for _o, l in merge_intervals(ranges))
        assert plan.physical_bytes >= unique
