"""The farm scheduler's invariants, cache semantics, and accounting.

The three properties the ISSUE pins:

* no two concurrently running jobs overlap in allocated nodes;
* EASY backfill never delays the head-of-queue job past its reservation;
* a warm frame-cache hit completes in zero simulated service time.

Plus: span/record reconciliation, determinism, and scenario parsing.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.farm import (
    FarmScenario,
    RenderFarm,
    SessionSpec,
    SizePolicy,
    Workload,
    selftest_scenario,
)
from repro.obs.tracer import CAT_FARM
from repro.utils.errors import ConfigError


class StubBackend:
    """Deterministic per-session service times; no real rendering."""

    name = "stub"

    def __init__(self, seconds=5.0):
        self.seconds = seconds
        self.plan_hits = 0
        self.plan_misses = 0

    def render(self, request, cores):
        self.plan_misses += 1
        s = (
            self.seconds[request.session]
            if isinstance(self.seconds, dict)
            else self.seconds
        )
        return float(s), ("frame", request.frame_key)


def run_farm(sessions, *, seconds=5.0, total_nodes=512, backfill=True,
             cache_entries=64, min_nodes=16, max_nodes=256,
             alloc_overhead_s=0.0, seed=11, **service_kwargs):
    farm = RenderFarm(
        Workload(sessions=tuple(sessions), seed=seed),
        StubBackend(seconds),
        total_nodes=total_nodes,
        size_policy=SizePolicy(min_nodes=min_nodes, max_nodes=max_nodes),
        result_cache_entries=cache_entries,
        backfill=backfill,
        alloc_overhead_s=alloc_overhead_s,
        **service_kwargs,
    )
    return farm, farm.run()


def assert_no_overlap(farm):
    log = farm.allocation_log
    for i, (rid_a, (alo, ahi), a0, a1) in enumerate(log):
        for rid_b, (blo, bhi), b0, b1 in log[i + 1:]:
            if a0 < b1 and b0 < a1:  # concurrent in time
                assert ahi <= blo or bhi <= alo, (
                    f"{rid_a} and {rid_b} overlap in nodes while concurrent"
                )


def assert_reservations_respected(result):
    for rec in result.records:
        if rec.reserved_start is not None:
            assert rec.t_hold <= rec.reserved_start + 1e-9, (
                f"{rec.request.rid} started at {rec.t_hold} after its "
                f"reservation {rec.reserved_start}"
            )


def assert_spans_reconcile(result):
    spans = [s for s in result.trace.spans if s.cat == CAT_FARM]
    by_name = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s)
    n = len(result.records)
    assert len(by_name.get("queue", [])) == n
    assert len(by_name.get("serve", [])) == n
    assert len(by_name.get("alloc", [])) == result.rendered
    by_rid = {s.args["req"]: s for s in by_name["serve"]}
    for rec in result.records:
        span = by_rid[rec.request.rid]
        assert span.t0 == rec.t_serve and span.t1 == rec.t_done
    assert result.accounting_failures() == []


class TestSchedulerInvariants:
    session_lists = st.lists(
        st.builds(
            lambda i, kind, arrival, requests, cores, rate, think, steps: SessionSpec(
                name=f"s{i}",
                kind=kind,
                arrival=arrival,
                requests=requests,
                cores=cores,
                rate_hz=rate,
                think_s=think,
                steps=steps,
            ),
            st.integers(0, 10_000),
            st.sampled_from(("browse", "orbit", "multivar")),
            st.sampled_from(("open", "closed")),
            st.integers(min_value=1, max_value=12),
            st.sampled_from((64, 256, 1024, 2048)),
            st.floats(min_value=0.05, max_value=2.0),
            st.floats(min_value=0.0, max_value=3.0),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=4,
        unique_by=lambda s: s.name,
    )

    @settings(max_examples=25, deadline=None)
    @given(sessions=session_lists, seed=st.integers(0, 2**16))
    def test_random_traffic_upholds_invariants(self, sessions, seed):
        farm, result = run_farm(sessions, seed=seed, alloc_overhead_s=0.25)
        assert len(result.records) == sum(s.requests for s in sessions)
        assert_no_overlap(farm)
        assert_reservations_respected(result)
        assert_spans_reconcile(result)
        for rec in result.records:
            assert rec.t_arrive <= rec.t_hold <= rec.t_serve <= rec.t_done

    def test_concurrent_jobs_share_disjoint_nodes(self):
        # Four closed sessions hammering a 512-node machine with
        # 128-node jobs: all four run concurrently, none overlap.
        sessions = [
            SessionSpec(name=f"s{i}", arrival="closed", requests=6,
                        cores=512, think_s=0.0, steps=6)
            for i in range(4)
        ]
        # coalesce=False: the four tenants ask for the same frame, and
        # this test pins *scheduler* concurrency, not deduplication.
        farm, result = run_farm(
            sessions, total_nodes=512, min_nodes=128, max_nodes=128,
            cache_entries=0, coalesce=False,
        )
        assert_no_overlap(farm)
        starts = [r.t_hold for r in result.records]
        # With think 0 and a machine holding all four tenants, the
        # first four jobs all start at t=0 — genuinely concurrent.
        assert sum(1 for s in starts if s == 0.0) == 4

    def test_backfill_fills_the_hole_without_delaying_head(self):
        # A: half the machine for 10 s.  B: the full machine — blocked
        # head with a reservation at A's release.  C: quarter machine
        # for 5 s — fits the hole and finishes before B's reservation.
        sessions = [
            SessionSpec(name="a", arrival="closed", requests=1, cores=2048),
            SessionSpec(name="b", arrival="closed", requests=1, cores=4096,
                        start_s=0.125),
            SessionSpec(name="c", arrival="closed", requests=1, cores=1024,
                        start_s=0.25),
        ]
        seconds = {"a": 10.0, "b": 10.0, "c": 5.0}
        farm, result = run_farm(
            sessions, seconds=seconds, total_nodes=1024,
            min_nodes=16, max_nodes=1024, cache_entries=0, coalesce=False,
        )
        recs = {r.request.session: r for r in result.records}
        assert result.backfilled == 1
        assert recs["c"].t_hold == 0.25  # backfilled immediately
        assert recs["b"].reserved_start == 10.0
        assert recs["b"].t_hold == 10.0  # exactly the reservation: no delay
        assert_no_overlap(farm)

    def test_too_long_candidate_is_not_backfilled(self):
        # Same shape, but C runs 20 s > B's reservation: must wait.
        sessions = [
            SessionSpec(name="a", arrival="closed", requests=1, cores=2048),
            SessionSpec(name="b", arrival="closed", requests=1, cores=4096,
                        start_s=0.125),
            SessionSpec(name="c", arrival="closed", requests=1, cores=1024,
                        start_s=0.25),
        ]
        seconds = {"a": 10.0, "b": 10.0, "c": 20.0}
        farm, result = run_farm(
            sessions, seconds=seconds, total_nodes=1024,
            min_nodes=16, max_nodes=1024, cache_entries=0, coalesce=False,
        )
        recs = {r.request.session: r for r in result.records}
        assert result.backfilled == 0
        assert recs["b"].t_hold == 10.0
        assert recs["c"].t_hold >= recs["b"].t_hold

    def test_no_backfill_means_strict_fcfs(self):
        sessions = [
            SessionSpec(name="a", arrival="closed", requests=1, cores=2048),
            SessionSpec(name="b", arrival="closed", requests=1, cores=4096,
                        start_s=0.125),
            SessionSpec(name="c", arrival="closed", requests=1, cores=1024,
                        start_s=0.25),
        ]
        seconds = {"a": 10.0, "b": 10.0, "c": 5.0}
        _, result = run_farm(
            sessions, seconds=seconds, total_nodes=1024,
            min_nodes=16, max_nodes=1024, cache_entries=0, backfill=False,
            coalesce=False,
        )
        recs = {r.request.session: r for r in result.records}
        assert recs["c"].t_hold >= recs["b"].t_hold  # arrival order held

    def test_backfill_never_hurts_makespan_here(self):
        # `big` holds half the machine; `huge` queues as a blocked head
        # wanting all of it; `small` jobs trickle through the hole.
        sessions = [
            SessionSpec(name="big", arrival="closed", requests=2, cores=2048,
                        steps=2),
            SessionSpec(name="huge", arrival="closed", requests=1, cores=4096,
                        start_s=0.125),
            SessionSpec(name="small", arrival="closed", requests=8, cores=512,
                        think_s=0.0, steps=8, start_s=0.25),
        ]
        seconds = {"big": 10.0, "huge": 10.0, "small": 2.0}
        kwargs = dict(seconds=seconds, total_nodes=1024, min_nodes=16,
                      max_nodes=1024, cache_entries=0, coalesce=False)
        _, with_bf = run_farm(sessions, **kwargs)
        _, without = run_farm(sessions, backfill=False, **kwargs)
        assert with_bf.backfilled > 0
        assert with_bf.makespan_s <= without.makespan_s


class TestResultCache:
    def test_warm_hit_is_zero_service_time(self):
        # One closed session re-requesting the same 2 frames: cycle 2+
        # hits the cache and completes instantly.
        sessions = [
            SessionSpec(name="s", arrival="closed", requests=6, steps=2,
                        cores=64, think_s=1.0),
        ]
        _, result = run_farm(sessions)
        hits = [r for r in result.records if r.cache_hit]
        assert len(hits) == 4
        for rec in hits:
            assert rec.serve_s == 0.0
            assert rec.latency_s == 0.0
            assert rec.nodes == 0  # never booted a partition

    def test_concurrent_duplicate_coalesces_onto_inflight_render(self):
        # Two sessions ask for the same frame at nearly the same time on
        # a machine that can only run one job: with single-flight on
        # (the default) the second request attaches to the in-flight
        # render and completes the moment it lands — same payload, zero
        # service time, no second render.
        sessions = [
            SessionSpec(name="a", arrival="closed", requests=1, cores=4096),
            SessionSpec(name="b", arrival="closed", requests=1, cores=4096,
                        start_s=0.125),
        ]
        _, result = run_farm(
            sessions, seconds=10.0, total_nodes=1024,
            min_nodes=1024, max_nodes=1024,
        )
        rec_a = next(r for r in result.records if r.request.session == "a")
        rec_b = next(r for r in result.records if r.request.session == "b")
        assert rec_b.coalesced and not rec_b.cache_hit
        assert rec_b.serve_s == 0.0
        assert rec_b.t_done == rec_a.t_done
        assert rec_b.payload is rec_a.payload  # identity, not a copy
        assert rec_b.queue_s == pytest.approx(10.0 - 0.125)
        assert result.rendered == 1 and result.promotions == 0

    def test_queued_duplicate_promotes_from_cache_without_coalescing(self):
        # Same traffic with single-flight off: the duplicate queues a
        # real job, then completes from the cache the first populated
        # while it waited — an in-queue *promotion*, counted at the
        # request level only (the recency refresh must not double-count
        # a lookup hit).
        sessions = [
            SessionSpec(name="a", arrival="closed", requests=1, cores=4096),
            SessionSpec(name="b", arrival="closed", requests=1, cores=4096,
                        start_s=0.125),
        ]
        _, result = run_farm(
            sessions, seconds=10.0, total_nodes=1024,
            min_nodes=1024, max_nodes=1024, coalesce=False,
        )
        rec_b = next(r for r in result.records if r.request.session == "b")
        assert rec_b.cache_hit and rec_b.promoted and not rec_b.coalesced
        assert rec_b.serve_s == 0.0
        assert rec_b.queue_s == pytest.approx(10.0 - 0.125)
        assert result.promotions == 1
        # The ledger identity the touch() fix exists for: the promotion
        # is not a counted lookup hit.
        assert result.result_cache_hits == result.cache_hits - result.promotions == 0
        assert result.accounting_failures() == []

    def test_cache_off_never_hits(self):
        sessions = [
            SessionSpec(name="s", arrival="closed", requests=6, steps=2,
                        cores=64, think_s=1.0),
        ]
        _, result = run_farm(sessions, cache_entries=0)
        assert result.cache_hits == 0
        assert result.cache_hit_rate == 0.0


class TestAccounting:
    def test_spans_reconcile_with_records(self):
        sessions = [
            SessionSpec(name="s", arrival="closed", requests=6, steps=3,
                        cores=64, think_s=0.5),
            SessionSpec(name="t", arrival="open", requests=5, rate_hz=1.0,
                        cores=256),
        ]
        _, result = run_farm(sessions, alloc_overhead_s=0.5)
        assert_spans_reconcile(result)

    def test_utilization_bounded_and_positive(self):
        sessions = [
            SessionSpec(name="s", arrival="closed", requests=4, cores=1024,
                        think_s=0.0, steps=4),
        ]
        _, result = run_farm(sessions, cache_entries=0)
        assert 0.0 < result.utilization <= 1.0

    def test_percentiles_are_ordered(self):
        sessions = [
            SessionSpec(name="s", arrival="open", requests=20, rate_hz=1.0,
                        cores=1024, steps=20),
        ]
        _, result = run_farm(sessions, total_nodes=256, cache_entries=0)
        assert result.p50_s <= result.p95_s <= result.p99_s

    def test_runs_are_deterministic(self):
        sessions = [
            SessionSpec(name="s", arrival="open", requests=15, rate_hz=0.8,
                        cores=512, steps=4),
            SessionSpec(name="t", arrival="closed", requests=10, think_s=1.0,
                        cores=1024, steps=5),
        ]
        _, a = run_farm(sessions, seed=42)
        _, b = run_farm(sessions, seed=42)
        assert a.summary() == b.summary()
        _, c = run_farm(sessions, seed=43)
        assert a.summary() != c.summary()

    def test_per_session_slo_override(self):
        sessions = [
            SessionSpec(name="strict", arrival="closed", requests=2,
                        cores=64, slo_s=0.001),
            SessionSpec(name="lax", arrival="closed", requests=2, cores=64),
        ]
        _, result = run_farm(sessions, seconds=5.0, cache_entries=0)
        per = result.summary()["per_session"]
        assert per["strict"]["slo_attainment"] == 0.0
        assert per["lax"]["slo_attainment"] == 1.0
        assert result.slo_attainment == 0.5

    def test_run_is_one_shot(self):
        farm, _ = run_farm([SessionSpec(name="s", requests=1, arrival="closed")])
        with pytest.raises(ConfigError, match="one-shot"):
            farm.run()

    def test_oversized_request_rejected(self):
        sessions = [SessionSpec(name="s", requests=1, arrival="closed",
                                cores=16384)]
        with pytest.raises(ConfigError, match="can provision at most"):
            run_farm(sessions, total_nodes=256, min_nodes=4096, max_nodes=4096)


class TestScenario:
    def test_json_round_trip(self, tmp_path):
        spec = {
            "seed": 3,
            "mode": "model",
            "total_nodes": 2048,
            "slo_s": 90.0,
            "size_policy": {"min_nodes": 256, "max_nodes": 1024},
            "sessions": [
                {"name": "b", "kind": "browse", "arrival": "open",
                 "requests": 4, "rate_hz": 0.5, "cores": 4096, "steps": 2},
            ],
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        scenario = FarmScenario.from_file(str(path))
        assert scenario.total_nodes == 2048
        assert scenario.size_policy.max_nodes == 1024
        assert scenario.sessions[0].kind == "browse"
        result = scenario.run()
        assert len(result.records) == 4

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ConfigError, match=r"unknown key 'scenario\.typo'"):
            FarmScenario.from_dict({"sessions": [{"name": "x"}], "typo": 1})

    def test_unknown_session_key_rejected(self):
        with pytest.raises(ConfigError, match=r"unknown key 'sessions\[0\]\.velocity'"):
            FarmScenario.from_dict({"sessions": [{"name": "x", "velocity": 9}]})

    def test_unknown_fault_key_rejected(self):
        with pytest.raises(ConfigError, match=r"unknown key 'fault\.crash_rate'"):
            FarmScenario.from_dict(
                {"sessions": [{"name": "x"}], "fault": {"crash_rate": 1.0}}
            )

    def test_unknown_backend_option_rejected(self):
        with pytest.raises(ConfigError, match=r"unknown key 'backend_options\.gird'"):
            FarmScenario.from_dict(
                {
                    "sessions": [{"name": "x"}],
                    "mode": "execute",
                    "backend_options": {"gird": 8},
                }
            )

    def test_missing_sessions_rejected(self):
        with pytest.raises(ConfigError, match="sessions"):
            FarmScenario.from_dict({"seed": 1})

    def test_compositor_backend_option_accepted(self):
        scenario = FarmScenario.from_dict(
            {
                "sessions": [{"name": "x", "requests": 2}],
                "mode": "execute",
                "backend_options": {
                    "grid": 12, "world_cores": 4, "image": 16,
                    "compositor": "puzzlepiece", "error_budget": 0.05,
                },
            }
        )
        backend = scenario.build().backend
        assert backend.compositor == "puzzlepiece"
        assert backend.error_budget == 0.05

    def test_unknown_compositor_rejected_at_spec_load(self):
        with pytest.raises(ConfigError, match="unknown compositor 'dbf'"):
            FarmScenario.from_dict(
                {
                    "sessions": [{"name": "x"}],
                    "mode": "execute",
                    "backend_options": {"compositor": "dbf"},
                }
            )

    def test_error_budget_on_exact_compositor_rejected(self):
        with pytest.raises(ConfigError, match="exact"):
            FarmScenario.from_dict(
                {
                    "sessions": [{"name": "x"}],
                    "mode": "execute",
                    "backend_options": {
                        "compositor": "directsend", "error_budget": 0.1,
                    },
                }
            )

    def test_error_budget_without_compositor_rejected(self):
        with pytest.raises(ConfigError, match="puzzlepiece"):
            FarmScenario.from_dict(
                {
                    "sessions": [{"name": "x"}],
                    "mode": "execute",
                    "backend_options": {"error_budget": 0.1},
                }
            )

    def test_negative_error_budget_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            FarmScenario.from_dict(
                {
                    "sessions": [{"name": "x"}],
                    "mode": "execute",
                    "backend_options": {
                        "compositor": "puzzlepiece", "error_budget": -0.1,
                    },
                }
            )

    def test_execute_scenario_runs_with_dfb(self):
        result = FarmScenario.from_dict(
            {
                "sessions": [{"name": "x", "requests": 3, "kind": "orbit"}],
                "mode": "execute",
                "backend_options": {
                    "grid": 12, "world_cores": 4, "image": 16,
                    "compositor": "dfb",
                },
            }
        ).run()
        assert len(result.records) == 3
        assert all(not r.rejected and r.t_done > 0 for r in result.records)

    def test_selftest_scenario_is_fast_and_clean(self):
        result = selftest_scenario().run()
        assert len(result.records) == 28
        assert result.cache_hits > 0
        assert_spans_reconcile(result)
