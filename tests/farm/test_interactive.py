"""Interactive sessions: progressive ladders through the render farm."""

import pathlib

import pytest

from repro.farm import (
    FarmScenario,
    SessionSpec,
    SizePolicy,
    run_interactive_selftest,
)
from repro.farm.request import FrameRequest
from repro.utils.errors import ConfigError

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def model_interactive_scenario(dwell_s: float) -> FarmScenario:
    """One fidgety-or-patient viewer at paper scale; unique frames
    (the 10-degree orbit never wraps), so every ladder renders."""
    sessions = (
        SessionSpec(
            name="viewer0", kind="interactive", arrival="closed", requests=12,
            think_s=30.0, cores=2048, orbit_deg=10.0, dataset="1120",
            levels=4, dwell_s=dwell_s,
        ),
    )
    return FarmScenario(
        sessions=sessions,
        seed=1530,
        mode="model",
        total_nodes=4096,
        slo_s=120.0,
        alloc_overhead_s=0.0,
        result_cache_entries=256,
        size_policy=SizePolicy(min_nodes=512, max_nodes=2048),
    )


class TestSessionSpec:
    def test_interactive_needs_a_real_ladder(self):
        with pytest.raises(ConfigError, match="levels >= 2"):
            SessionSpec(name="i", kind="interactive", arrival="closed",
                        requests=1, levels=1)

    def test_dwell_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="dwell_s"):
            SessionSpec(name="i", kind="interactive", arrival="closed",
                        requests=1, dwell_s=-1.0)

    def test_request_carries_ladder_depth_and_dwell(self):
        spec = SessionSpec(name="i", kind="interactive", arrival="closed",
                           requests=2, levels=3, dwell_s=4.0)
        req = spec.request(0, cancel_after_s=2.5)
        assert req.levels == 3
        assert req.cancel_after_s == 2.5
        assert req.is_progressive

    def test_non_interactive_kinds_ignore_ladder_fields(self):
        spec = SessionSpec(name="b", kind="browse", arrival="closed",
                           requests=2, levels=5, dwell_s=4.0)
        req = spec.request(0, cancel_after_s=2.5)
        assert req.levels == 1
        assert req.cancel_after_s is None
        assert not req.is_progressive

    def test_dwell_times_deterministic_and_patient_means_never(self):
        fidget = SessionSpec(name="i", kind="interactive", arrival="closed",
                             requests=4, dwell_s=5.0)
        assert list(fidget.dwell_times(7)) == list(fidget.dwell_times(7))
        assert all(d > 0 for d in fidget.dwell_times(7))
        patient = SessionSpec(name="p", kind="interactive", arrival="closed",
                              requests=4, dwell_s=0.0)
        assert not patient.dwell_times(7).any()


class TestFrameKey:
    def kwargs(self, **over):
        base = dict(session="s", seq=0, dataset="mini", step=0,
                    azimuth_deg=30.0, elevation_deg=0.0, cores=64)
        base.update(over)
        return base

    def test_ladder_depth_is_part_of_the_identity(self):
        flat = FrameRequest(**self.kwargs())
        ladder = FrameRequest(**self.kwargs(levels=4))
        assert flat.frame_key != ladder.frame_key

    def test_dwell_is_not_part_of_the_identity(self):
        """Truncated ladders are never stored under the full frame key,
        so the cancel time must not fragment the cache."""
        a = FrameRequest(**self.kwargs(levels=4, cancel_after_s=None))
        b = FrameRequest(**self.kwargs(levels=4, cancel_after_s=3.0))
        assert a.frame_key == b.frame_key

    def test_level_keys_are_distinct(self):
        req = FrameRequest(**self.kwargs(levels=4))
        keys = {req.level_key(i) for i in range(3)} | {req.frame_key}
        assert len(keys) == 4


class TestNodeSecondsReclaim:
    def test_camera_moves_strictly_reduce_node_seconds(self):
        """The acceptance identity: against the same traffic, the
        fidgety arm's utilized node-seconds are the patient arm's minus
        exactly what cancellation reclaimed — and strictly fewer."""
        patient = model_interactive_scenario(dwell_s=0.0).run()
        fidget = model_interactive_scenario(dwell_s=5.0).run()
        assert patient.accounting_failures() == []
        assert fidget.accounting_failures() == []

        assert patient.progressive_stats()["cancelled"] == 0
        assert patient.cancelled_node_s == 0.0
        assert fidget.progressive_stats()["cancelled"] > 0
        assert fidget.cancelled_node_s > 0.0
        assert fidget.util_node_seconds < patient.util_node_seconds
        assert fidget.util_node_seconds + fidget.cancelled_node_s == pytest.approx(
            patient.util_node_seconds, abs=1e-6
        )

    def test_ttfp_meets_an_slo_the_full_frame_misses(self):
        result = model_interactive_scenario(dwell_s=0.0).run()
        stats = result.progressive_stats()
        assert stats["ttfp_speedup"] >= 3.0
        for r in result.records:
            assert r.ttfp_s <= r.latency_s + 1e-9


class TestSelftest:
    def test_interactive_selftest_invariants_hold(self):
        result, failures = run_interactive_selftest()
        assert failures == []
        stats = result.progressive_stats()
        assert stats["cancelled"] > 0
        assert stats["coarse_hits"] > 0
        assert result.cancelled_node_s > 0.0


class TestExampleSpec:
    def test_committed_example_loads_and_runs(self):
        path = REPO_ROOT / "examples" / "farm_interactive.json"
        scenario = FarmScenario.from_file(str(path))
        assert any(s.kind == "interactive" for s in scenario.sessions)
        result = scenario.run()
        assert result.accounting_failures() == []
        stats = result.progressive_stats()
        assert stats is not None
        assert stats["ttfp_speedup"] >= 3.0
        assert stats["cancelled"] > 0
