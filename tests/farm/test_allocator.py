"""Aligned node allocation and the partition size policy."""

import pytest
from hypothesis import given, strategies as st

from repro.farm.allocator import (
    STANDARD_SIZES,
    NodeAllocator,
    SizePolicy,
    standard_size_for,
)
from repro.utils.errors import ConfigError


class TestStandardSize:
    def test_exact_sizes_round_trip(self):
        for size in STANDARD_SIZES:
            assert standard_size_for(size) == size

    def test_rounds_up(self):
        assert standard_size_for(17) == 32
        assert standard_size_for(513) == 1024
        assert standard_size_for(1) == 16

    def test_oversized_rejected(self):
        with pytest.raises(ConfigError, match="no standard partition"):
            standard_size_for(40961)


class TestSizePolicy:
    def test_cores_round_to_standard_nodes(self):
        policy = SizePolicy()
        assert policy.nodes_for(64) == 16
        assert policy.nodes_for(4096) == 1024
        assert policy.nodes_for(4097) == 2048

    def test_floor_and_cap(self):
        policy = SizePolicy(min_nodes=256, max_nodes=2048)
        assert policy.nodes_for(64) == 256
        assert policy.nodes_for(32768) == 2048

    def test_result_always_standard(self):
        policy = SizePolicy(min_nodes=100, max_nodes=5000)
        for cores in (1, 63, 64, 1000, 4096, 100_000):
            assert policy.nodes_for(cores) in STANDARD_SIZES

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigError, match="min_nodes"):
            SizePolicy(min_nodes=1024, max_nodes=512)


class TestNodeAllocator:
    def test_alloc_is_aligned(self):
        a = NodeAllocator(4096)
        assert a.alloc(512) == (0, 512)
        assert a.alloc(1024) == (1024, 2048)  # skips the 512..1024 hole
        assert a.alloc(512) == (512, 1024)  # the hole still serves 512s

    def test_exhaustion_returns_none(self):
        a = NodeAllocator(1024)
        assert a.alloc(1024) == (0, 1024)
        assert a.alloc(16) is None

    def test_free_coalesces(self):
        a = NodeAllocator(2048)
        ivs = [a.alloc(512) for _ in range(4)]
        assert a.free_nodes == 0
        for iv in ivs:
            a.free(iv)
        assert a._free == [(0, 2048)]

    def test_double_free_rejected(self):
        a = NodeAllocator(1024)
        iv = a.alloc(256)
        a.free(iv)
        with pytest.raises(ConfigError, match="double free"):
            a.free(iv)

    def test_clone_is_independent(self):
        a = NodeAllocator(1024)
        a.alloc(256)
        c = a.clone()
        c.alloc(256)
        assert a.free_nodes == 768
        assert c.free_nodes == 512

    @given(
        st.lists(
            st.sampled_from([16, 32, 64, 128, 256, 512]),
            min_size=1,
            max_size=60,
        ),
        st.randoms(use_true_random=False),
    )
    def test_random_alloc_free_invariants(self, sizes, pyrandom):
        """Live intervals never overlap, always align, and freeing all
        of them restores the pristine allocator."""
        a = NodeAllocator(2048)
        live: list[tuple[int, int]] = []
        for size in sizes:
            # Randomly interleave frees to fragment the space.
            if live and pyrandom.random() < 0.4:
                a.free(live.pop(pyrandom.randrange(len(live))))
            iv = a.alloc(size)
            if iv is None:
                continue
            lo, hi = iv
            assert hi - lo == size
            assert lo % size == 0
            for olo, ohi in live:
                assert hi <= olo or ohi <= lo, "allocations overlap"
            live.append(iv)
        assert a.allocated_nodes == sum(hi - lo for lo, hi in live)
        for iv in live:
            a.free(iv)
        assert a._free == [(0, 2048)]
