"""Campaign jobs: orbit animations submitted as one pipelined unit.

A campaign session rolls its whole fly-around into a single job — one
queue slot, one partition, one payload carrying every frame — and the
backend prices (model) or renders (execute) it through the same
pipelined schedule the core campaign driver uses.  The ledger identities
must keep balancing: ``accounting_failures()`` stays empty, the payload
carries exactly the promised frame count, and the pipelined makespan
never exceeds the no-overlap campaign time.
"""

import dataclasses

import numpy as np
import pytest

from repro.farm.backends import CampaignPayload
from repro.farm.request import FrameRequest
from repro.farm.scenario import FarmScenario, SessionSpec, SizePolicy
from repro.farm.workload import Workload
from repro.obs.tracer import Tracer
from repro.utils.errors import ConfigError


def model_scenario(**session_kw):
    kw = dict(
        name="anim0", kind="orbit", campaign=True, requests=8,
        orbit_deg=15.0, prefetch_depth=1, arrival="open", rate_hz=0.05,
        cores=4096,
    )
    kw.update(session_kw)
    return FarmScenario(
        sessions=(
            SessionSpec(**kw),
            SessionSpec(name="browse0", kind="browse", requests=5,
                        arrival="open", rate_hz=0.05, cores=4096),
        ),
        mode="model",
    )


def execute_scenario(depth=1, frames=4):
    return FarmScenario(
        sessions=(
            SessionSpec(name="anim0", kind="orbit", campaign=True,
                        requests=frames, orbit_deg=20.0, prefetch_depth=depth,
                        arrival="closed", think_s=0.1, cores=16, dataset="mini"),
        ),
        mode="execute",
        total_nodes=64,
        size_policy=SizePolicy(min_nodes=16, max_nodes=16),
        alloc_overhead_s=0.1,
    )


class TestCampaignShape:
    def test_campaign_session_submits_once(self):
        spec = SessionSpec(name="a", kind="orbit", campaign=True, requests=8)
        assert spec.submissions == 1
        req = spec.request(0)
        assert req.is_campaign and req.frames == 8
        assert req.orbit_deg == spec.orbit_deg
        assert req.prefetch_depth == spec.prefetch_depth

    def test_campaign_requires_orbit(self):
        with pytest.raises(ConfigError):
            SessionSpec(name="a", kind="browse", campaign=True)
        with pytest.raises(ConfigError):
            SessionSpec(name="a", kind="orbit", campaign=True, prefetch_depth=-1)

    def test_workload_counts_jobs_and_frames(self):
        w = Workload(sessions=(
            SessionSpec(name="a", kind="orbit", campaign=True, requests=8),
            SessionSpec(name="b", kind="browse", requests=5),
        ))
        assert w.total_requests == 6  # 1 campaign job + 5 browse
        assert w.total_frames == 13

    def test_frame_key_carries_animation_not_depth(self):
        base = dict(session="s", seq=0, dataset="1120", step=0,
                    azimuth_deg=30.0, elevation_deg=20.0)
        a = FrameRequest(**base, frames=8, orbit_deg=15.0, prefetch_depth=1)
        b = FrameRequest(**base, frames=8, orbit_deg=15.0, prefetch_depth=3)
        c = FrameRequest(**base, frames=8, orbit_deg=30.0, prefetch_depth=1)
        single = FrameRequest(**base)
        assert a.frame_key == b.frame_key  # depth changes when, not what
        assert a.frame_key != c.frame_key  # different animation
        assert a.frame_key != single.frame_key  # not the single frame


class TestModelCampaigns:
    def test_books_balance(self):
        tracer = Tracer(enabled=True)
        res = model_scenario().run(tracer)
        assert res.accounting_failures() == []
        assert res.campaigns == 1
        assert res.campaign_frames == 8
        assert res.frames_delivered == 13

    def test_payload_promises_kept(self):
        res = model_scenario().run()
        (rec,) = res.campaign_records()
        payload = rec.payload
        assert isinstance(payload, CampaignPayload)
        assert payload.frames == rec.request.frames == 8
        assert payload.makespan_s <= payload.sequential_s
        assert rec.serve_s == pytest.approx(payload.makespan_s)

    def test_prefetch_overlaps_io(self):
        """Depth 1 must beat depth 0 on the priced campaign (io > 0, rc > 0)."""
        d0 = model_scenario(prefetch_depth=0).run()
        d1 = model_scenario(prefetch_depth=1).run()
        p0 = d0.campaign_records()[0].payload
        p1 = d1.campaign_records()[0].payload
        assert p0.makespan_s == pytest.approx(p0.sequential_s)
        assert p1.makespan_s < p0.makespan_s
        assert p1.overlap_saved_s > 0

    def test_stats_surface_in_summary(self):
        res = model_scenario().run()
        stats = res.campaign_stats()
        assert stats["campaigns"] == 1 and stats["frames"] == 8
        assert stats["frames_per_s"]["mean"] > 0
        assert stats["prefetch_depths"] == [1]
        assert res.summary()["campaigns"] == stats
        assert "campaigns" in res.report()

    def test_no_campaigns_no_section(self):
        plain = FarmScenario(
            sessions=(SessionSpec(name="b", kind="browse", requests=4,
                                  arrival="open", rate_hz=0.05),),
            mode="model",
        ).run()
        assert plain.campaign_stats() is None
        assert "campaigns" not in plain.summary()


class TestExecuteCampaigns:
    def test_renders_all_frames_with_clean_books(self):
        tracer = Tracer(enabled=True)
        res = execute_scenario(depth=2, frames=4).run(tracer)
        assert res.accounting_failures() == []
        (rec,) = res.campaign_records()
        payload = rec.payload
        assert payload.frames == 4
        assert len(payload.detail) == 4  # the rendered images
        for img in payload.detail:
            assert isinstance(img, np.ndarray) and np.isfinite(img).all()
        # Orbit frames differ from each other.
        assert not np.allclose(payload.detail[0], payload.detail[-1], atol=1e-4)

    def test_depth_invariant_frames(self):
        """The delivered images are bitwise depth-independent."""
        r0 = execute_scenario(depth=0).run()
        r2 = execute_scenario(depth=2).run()
        for a, b in zip(r0.campaign_records()[0].payload.detail,
                        r2.campaign_records()[0].payload.detail):
            assert np.array_equal(a, b)

    def test_json_scenario_roundtrip(self):
        spec = {
            "mode": "execute",
            "total_nodes": 64,
            "size_policy": {"min_nodes": 16, "max_nodes": 16},
            "sessions": [
                {"name": "anim0", "kind": "orbit", "campaign": True,
                 "requests": 3, "orbit_deg": 30.0, "prefetch_depth": 2,
                 "arrival": "closed", "think_s": 0.1, "cores": 16,
                 "dataset": "mini"},
            ],
        }
        scenario = FarmScenario.from_dict(spec)
        assert scenario.sessions[0].campaign
        res = scenario.run()
        assert res.campaigns == 1
        assert res.accounting_failures() == []
