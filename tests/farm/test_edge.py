"""The service tier: single-flight coalescing, the edge cache, honest books.

Pinned properties (the duplicate-render fix):

* K concurrent identical requests cost exactly one backend render and
  one partition boot; all K futures resolve at the same simulated time
  with the *same payload object*;
* jobs satisfied from cache or coalescing never call the backend at
  all (pricing is deferred to start — the eager-render fix);
* a crash mid-render requeues the primary once, not once per waiter;
* the recency refresh on an in-queue promotion does not count a cache
  lookup (``cache_hits == result_lookup_hits + promotions`` exactly);
* a disabled result cache reports 0 hits / 0 misses;
* edge caches are per-region LRUs with TTL expiry and dataset
  invalidation, and every counter reconciles with the result.
"""

import pytest

from repro.farm import (
    EdgeCache,
    EdgeConfig,
    FarmFaults,
    FrameResultCache,
    RenderFarm,
    SessionSpec,
    SizePolicy,
    Workload,
)
from repro.obs.tracer import CAT_EDGE, CAT_FARM
from repro.utils.errors import ConfigError

from test_service import StubBackend, run_farm


def crowd(k, *, burst_s=1.0, **kw):
    """K arrivals for one identical frame inside ``burst_s``."""
    kw.setdefault("cores", 256)
    return SessionSpec(
        name="crowd", kind="browse", arrival="flash", requests=k,
        burst_s=burst_s, steps=1, **kw,
    )


def alloc_spans(result):
    return [s for s in result.trace.spans if s.cat == CAT_FARM and s.name == "alloc"]


class TestSingleFlight:
    @pytest.mark.parametrize("k", [2, 8, 32])
    def test_k_identical_requests_render_once(self, k):
        # Machine sized so ALL k jobs could run concurrently: any render
        # beyond the first is pure duplication, not queueing.
        farm, result = run_farm(
            [crowd(k)], seconds=60.0, total_nodes=64 * k,
            min_nodes=64, max_nodes=64,
        )
        assert farm.backend.plan_misses == 1  # exactly one backend render
        assert len(alloc_spans(result)) == 1  # exactly one partition boot
        assert result.rendered == 1
        assert result.coalesced == k - 1
        primary = next(r for r in result.records if not r.coalesced)
        for rec in result.records:
            assert rec.t_done == primary.t_done  # all land together
            assert rec.payload is primary.payload  # identity, not a copy
        assert result.accounting_failures() == []

    def test_coalescing_off_renders_k_times(self):
        # The acceptance contrast: same crowd, coalescing disabled, a
        # machine holding exactly K concurrent partitions — every
        # request boots and renders (none finishes within the burst, so
        # no promotions either).
        k = 32
        farm, result = run_farm(
            [crowd(k)], seconds=60.0, total_nodes=64 * k,
            min_nodes=64, max_nodes=64, coalesce=False,
        )
        assert farm.backend.plan_misses == k
        assert len(alloc_spans(result)) == k
        assert result.rendered == k and result.coalesced == 0
        assert result.promotions == 0
        assert result.accounting_failures() == []

    def test_waiters_keep_queueing_delay_accounting(self):
        farm, result = run_farm(
            [crowd(8, burst_s=2.0)], seconds=30.0, total_nodes=64,
            min_nodes=64, max_nodes=64,
        )
        primary = next(r for r in result.records if not r.coalesced)
        for rec in result.records:
            if rec.coalesced:
                assert rec.serve_s == 0.0 and rec.nodes == 0
                assert rec.latency_s == pytest.approx(
                    primary.t_done - rec.t_arrive
                )

    def test_cached_and_coalesced_jobs_never_call_the_backend(self):
        # The eager-render fix, pinned with the counting stub: a closed
        # session revisiting 2 frames renders exactly 2 times however
        # many requests it makes.
        sessions = [
            SessionSpec(name="s", arrival="closed", requests=10, steps=2,
                        cores=64, think_s=0.5),
        ]
        farm, result = run_farm(sessions)
        assert farm.backend.plan_misses == 2
        assert result.rendered == 2
        assert result.cache_hits == 8

    def test_promoted_job_never_calls_the_backend(self):
        # coalesce off: the duplicate queues a REAL job, the frame gets
        # cached while it waits, and the promotion completes it without
        # the deferred pricing ever firing.
        sessions = [
            SessionSpec(name="a", arrival="closed", requests=1, cores=4096),
            SessionSpec(name="b", arrival="closed", requests=1, cores=4096,
                        start_s=0.125),
        ]
        farm, result = run_farm(
            sessions, seconds=10.0, total_nodes=1024,
            min_nodes=1024, max_nodes=1024, coalesce=False,
        )
        assert farm.backend.plan_misses == 1
        assert result.promotions == 1
        assert result.accounting_failures() == []

    def test_crash_mid_render_requeues_once_not_k_times(self):
        # One 64-node partition, 8 coalesced clients, a crash process
        # bounded to one kill: the primary requeues once (waiters stay
        # attached), re-runs after quarantine, and everyone still gets
        # the same frame at the same instant.
        k = 8
        farm = RenderFarm(
            Workload(sessions=(crowd(k),), seed=11),
            StubBackend(60.0),
            total_nodes=64,
            size_policy=SizePolicy(min_nodes=64, max_nodes=64),
            result_cache_entries=64,
            faults=FarmFaults(
                crash_rate_per_node_hour=30.0, repair_s=2.0, max_crashes=1
            ),
        )
        result = farm.run()
        assert result.faults is not None and result.faults.crashes == 1
        assert result.faults.jobs_killed == 1
        assert sum(r.retries for r in result.records) == 1  # once, not K
        assert farm.backend.plan_misses == 1  # priced once, even across retry
        assert len(alloc_spans(result)) == 1  # one *finished* boot
        primary = next(r for r in result.records if not r.coalesced)
        assert primary.retries == 1
        for rec in result.records:
            assert rec.t_done == primary.t_done
            assert rec.payload is primary.payload
        assert result.accounting_failures() == []


class TestHonestCacheBooks:
    def test_disabled_cache_counts_nothing(self):
        cache = FrameResultCache(0)
        assert cache.lookup(("d", 0)) is None
        cache.store(("d", 0), "frame")
        assert cache.lookup(("d", 0)) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_disabled_cache_farm_run_reports_zero_zero(self):
        sessions = [
            SessionSpec(name="s", arrival="closed", requests=6, steps=2,
                        cores=64, think_s=1.0),
        ]
        _, result = run_farm(sessions, cache_entries=0)
        assert result.result_cache_hits == 0
        assert result.result_cache_misses == 0
        assert not result.result_cache_enabled
        assert result.accounting_failures() == []

    def test_touch_refreshes_recency_without_counting(self):
        cache = FrameResultCache(2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        hits, misses = cache.hits, cache.misses
        assert cache.touch(("a",)) == 1  # now most-recent
        assert (cache.hits, cache.misses) == (hits, misses)
        cache.store(("c",), 3)  # evicts LRU: ("b",), not the touched ("a",)
        assert cache.contains(("a",)) and not cache.contains(("b",))
        assert cache.touch(("missing",)) is None
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_lookup_identity_holds_across_a_mixed_run(self):
        # cache_hits == result_lookup_hits + promotions, pinned on
        # traffic that exercises hits, promotions, and coalesces.
        sessions = [
            SessionSpec(name="s", arrival="closed", requests=8, steps=2,
                        cores=64, think_s=0.25),
            SessionSpec(name="dup", arrival="flash", requests=6, burst_s=0.5,
                        steps=1, cores=256, azimuth_deg=90.0),
        ]
        for coalesce in (True, False):
            _, result = run_farm(
                sessions, seconds=10.0, total_nodes=256,
                min_nodes=64, max_nodes=64, coalesce=coalesce,
            )
            assert result.cache_hits == result.result_cache_hits + result.promotions
            assert result.accounting_failures() == []


class TestEdgeCache:
    def test_per_region_lru_eviction(self):
        edge = EdgeCache(entries_per_region=2)
        edge.fill("us", ("a",), 1, now=0.0)
        edge.fill("us", ("b",), 2, now=1.0)
        assert edge.lookup("us", ("a",), now=2.0) == 1  # refreshes recency
        edge.fill("us", ("c",), 3, now=3.0)  # evicts ("b",)
        assert edge.lookup("us", ("b",), now=4.0) is None
        assert edge.lookup("us", ("c",), now=4.0) == 3
        # Regions are independent stores.
        edge.fill("eu", ("a",), 9, now=5.0)
        assert edge.lookup("eu", ("a",), now=5.0) == 9
        assert len(edge) == 3

    def test_ttl_expiry_counts_expired_and_miss(self):
        edge = EdgeCache(entries_per_region=8, ttl_s=10.0)
        edge.fill("us", ("a",), 1, now=0.0)
        assert edge.lookup("us", ("a",), now=5.0) == 1
        assert edge.lookup("us", ("a",), now=20.0) is None  # aged out
        assert edge.expired == 1
        assert edge.misses == 1
        assert edge.lookup("us", ("a",), now=21.0) is None  # really gone

    def test_invalidate_dataset_sweeps_every_region(self):
        edge = EdgeCache(entries_per_region=8)
        edge.fill("us", ("plume", 0), 1, now=0.0)
        edge.fill("eu", ("plume", 1), 2, now=0.0)
        edge.fill("eu", ("other", 0), 3, now=0.0)
        assert edge.invalidate_dataset("plume") == 2
        assert edge.invalidated == 2
        assert edge.lookup("eu", ("other", 0), now=1.0) == 3

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="entries_per_region"):
            EdgeConfig(entries_per_region=0)
        with pytest.raises(ConfigError, match="ttl_s"):
            EdgeConfig(ttl_s=-1.0)


class TestEdgeTierIntegration:
    def make_regional_farm(self, **kw):
        # browse0 (us) renders 3 frames; browse1 (eu) asks for the same
        # frames later: origin hits fill the eu edge, repeats hit it.
        sessions = (
            SessionSpec(name="browse0", arrival="closed", requests=6, steps=3,
                        cores=64, think_s=0.5, region="us"),
            SessionSpec(name="browse1", arrival="closed", requests=6, steps=3,
                        cores=64, think_s=0.5, region="eu", start_s=30.0),
        )
        kw.setdefault("edge", EdgeCache(entries_per_region=16))
        return run_farm(sessions, seconds=2.0, **kw)

    def test_second_region_hits_origin_then_its_edge(self):
        farm, result = self.make_regional_farm()
        assert result.edge_hits > 0
        assert result.cache_hits > 0  # eu's first pass: origin, not edge
        summary = farm.edge.summary()
        assert summary["per_region"]["us"]["hits"] > 0
        assert summary["per_region"]["eu"]["hits"] > 0
        # Edge-hit marker spans reconcile with the records.
        edge_spans = [
            s for s in result.trace.spans
            if s.cat == CAT_EDGE and s.name == "edge-hit"
        ]
        assert len(edge_spans) == result.edge_hits
        assert result.accounting_failures() == []

    def test_edge_hits_never_touch_origin_counters(self):
        farm, result = self.make_regional_farm()
        # Origin lookups happen only for requests that missed the edge.
        assert (
            result.result_cache_hits + result.result_cache_misses
            == result.arrivals - result.edge_hits
        )

    def test_invalidation_forces_rerender(self):
        # Without invalidation the second pass is all cache/edge hits;
        # a timestep publication mid-run forces fresh renders.
        sessions = (
            SessionSpec(name="s", arrival="closed", requests=8, steps=2,
                        cores=64, think_s=2.0, region="us"),
        )
        farm = RenderFarm(
            Workload(sessions=sessions, seed=11),
            StubBackend(2.0),
            total_nodes=512,
            size_policy=SizePolicy(min_nodes=16, max_nodes=256),
            result_cache_entries=64,
            edge=EdgeCache(entries_per_region=16),
        )
        farm.engine.schedule(15.0, lambda: farm.invalidate_dataset("1120"))
        result = farm.run()
        assert farm.result_cache.invalidated > 0
        assert farm.edge.invalidated > 0
        # More renders than the 2 unique frames: the flush cost real work.
        assert result.rendered > 2
        assert result.accounting_failures() == []

    def test_ttl_expiry_in_the_farm_clock(self):
        # Think time far beyond the TTL: every revisit finds its edge
        # entry expired; the origin (no TTL) still serves it.
        farm, result = self.make_regional_farm(
            edge=EdgeCache(entries_per_region=16, ttl_s=0.1),
        )
        assert result.edge_hits == 0
        assert farm.edge.expired > 0
        assert result.cache_hits > 0
        assert result.accounting_failures() == []


class TestDeterminism:
    def test_service_tier_runs_are_reproducible(self):
        def go():
            return run_farm(
                [
                    crowd(12, burst_s=2.0),
                    SessionSpec(name="b", arrival="open", requests=8,
                                rate_hz=0.5, steps=2, cores=64, region="eu"),
                ],
                seconds=10.0, total_nodes=256, min_nodes=64, max_nodes=64,
                edge=EdgeCache(entries_per_region=16),
            )[1]

        a, b = go(), go()
        assert a.summary() == b.summary()
