"""Node-failure injection in the render farm: kills, requeues, quarantine.

Pinned properties:

* every request still completes (retry covers job failure);
* the run is deterministic in (workload seed, fault config);
* the allocation log keeps the no-overlap invariant even when kills
  truncate entries and quarantine reserves nodes out from under the
  scheduler;
* the node-second ledger stays consistent (goodput/availability in
  (0, 1], wasted + useful node-seconds reconcile).
"""

from __future__ import annotations

import dataclasses

from repro.farm import (
    FarmFaults,
    RenderFarm,
    SessionSpec,
    SizePolicy,
    Workload,
    selftest_scenario,
)
from repro.obs.tracer import CAT_FAULT

from test_service import StubBackend, assert_no_overlap

SESSIONS = (
    SessionSpec(name="a", kind="browse", arrival="open", requests=10, rate_hz=0.2),
    SessionSpec(name="b", kind="orbit", arrival="open", requests=10, rate_hz=0.2),
    SessionSpec(name="c", kind="browse", arrival="open", requests=8, rate_hz=0.1),
)

# Machine-level rate ~= 2/node-h x 64 nodes = 128 crashes/h: a handful
# over the few-minute run — enough to kill jobs, not enough to livelock.
FAULTS = FarmFaults(crash_rate_per_node_hour=2.0, repair_s=5.0)


def run_faulty_farm(*, faults=FAULTS, seed=11, total_nodes=64, seconds=6.0):
    # coalesce=False: these tests pin the requeue/ledger mechanics with
    # every request rendering; the crash-under-coalescing interaction
    # has its own tests in test_edge.py.
    farm = RenderFarm(
        Workload(sessions=SESSIONS, seed=seed),
        StubBackend(seconds),
        total_nodes=total_nodes,
        size_policy=SizePolicy(min_nodes=8, max_nodes=32),
        result_cache_entries=0,
        coalesce=False,
        faults=faults,
    )
    return farm, farm.run()


class TestCompletion:
    def test_every_request_completes_despite_crashes(self):
        farm, result = run_faulty_farm()
        assert result.faults is not None
        assert result.faults.crashes > 0  # the injection actually fired
        assert len(result.records) == sum(s.requests for s in SESSIONS)
        for rec in result.records:
            assert rec.t_done is not None
        killed = [r for r in result.records if r.retries > 0]
        assert len(killed) == result.faults.jobs_killed > 0
        for rec in killed:
            assert rec.t_first_fail is not None
            assert rec.t_done >= rec.t_first_fail

    def test_determinism(self):
        _, a = run_faulty_farm()
        _, b = run_faulty_farm()
        assert a.makespan_s == b.makespan_s
        assert a.faults.summary() == b.faults.summary()
        assert [
            (r.t_arrive, r.t_serve, r.t_done, r.retries) for r in a.records
        ] == [(r.t_arrive, r.t_serve, r.t_done, r.retries) for r in b.records]

    def test_different_seed_different_crash_history(self):
        _, a = run_faulty_farm(seed=11)
        _, b = run_faulty_farm(seed=12)
        assert a.faults.summary() != b.faults.summary()


class TestSchedulerInvariants:
    def test_no_overlap_with_kill_truncation_and_quarantine(self):
        farm, _ = run_faulty_farm()
        assert_no_overlap(farm)

    def test_killed_entries_are_truncated_not_dropped(self):
        farm, result = run_faulty_farm()
        # Each kill requeues the job, so its request id appears in more
        # allocation-log entries than a clean run would produce.
        entries = [rid for rid, _, _, _ in farm.allocation_log]
        assert len(entries) == len(result.records) + result.faults.retries


class TestLedger:
    def test_ledger_bounds_and_consistency(self):
        _, result = run_faulty_farm()
        st = result.faults
        assert 0.0 < st.availability <= 1.0
        assert 0.0 < st.goodput <= 1.0
        assert st.wasted_node_s > 0.0
        assert st.quarantined_node_s > 0.0
        assert st.retries >= st.jobs_killed > 0
        assert len(st.mttr_samples) == st.jobs_killed
        assert all(m > 0.0 for m in st.mttr_samples)

    def test_max_crashes_caps_the_process(self):
        capped = dataclasses.replace(FAULTS, max_crashes=2)
        _, result = run_faulty_farm(faults=capped)
        assert result.faults.crashes <= 2

    def test_summary_surfaces_in_farm_report(self):
        _, result = run_faulty_farm()
        assert "faults" in result.summary()
        assert "availability" in result.report()

    def test_fault_spans_reach_the_trace(self):
        _, result = run_faulty_farm()
        cats = {s.cat for s in result.trace.spans}
        assert CAT_FAULT in cats


class TestScenarioIntegration:
    def test_selftest_scenario_with_faults_completes(self):
        scenario = dataclasses.replace(
            selftest_scenario(),
            fault=FarmFaults(crash_rate_per_node_hour=0.05, repair_s=2.0),
        )
        result = scenario.run()
        assert all(r.t_done is not None for r in result.records)
        assert result.faults is not None
