"""Admission control and autoscaling: shedding, token buckets, the pool.

Pinned properties:

* token buckets refill on the *simulated* clock: ``burst`` requests
  pass back-to-back, then admissions are paced at ``rate_hz``;
* only new render work spends tokens — cache hits, edge hits, and
  coalesced attaches are never shed;
* rejections are explicit accounting: flagged records in
  ``FarmResult.rejected``, excluded from served latency percentiles,
  reconciled against the admission counters and ``reject`` spans;
* a closed session whose request is shed still makes progress;
* autoscaling fences the allocator: the static pool bills exactly
  ``nodes × makespan`` node-seconds, the reactive pool grows under
  queue pressure, shrinks when idle, and never bills more than the
  machine; shrink is skipped (not crashed) while the drain region is
  busy.
"""

import pytest

from repro.farm import (
    ReactiveAutoscaler,
    RenderFarm,
    SessionSpec,
    SizePolicy,
    StaticPool,
    TierSpec,
    TokenBucketAdmission,
    Workload,
    admission_from_dict,
    autoscale_from_dict,
)
from repro.farm.admission import check_admission_spec
from repro.farm.autoscale import check_autoscale_spec
from repro.obs.tracer import CAT_ADMIT
from repro.utils.errors import ConfigError

from test_edge import crowd
from test_service import StubBackend, run_farm


class TestTokenBucket:
    def test_burst_then_paced(self):
        adm = TokenBucketAdmission({"free": TierSpec(rate_hz=1.0, burst=2)})
        assert adm.admit("free", 0.0)
        assert adm.admit("free", 0.0)  # burst depth
        assert not adm.admit("free", 0.0)  # bucket dry
        assert not adm.admit("free", 0.5)  # half a token: still dry
        assert adm.admit("free", 1.6)  # refilled on the clock
        assert adm.rejected["free"] == 2

    def test_unlimited_tier_always_admits(self):
        adm = TokenBucketAdmission({"free": TierSpec(rate_hz=0.001, burst=1)})
        for t in range(50):
            assert adm.admit("interactive", float(t) / 10)
        assert adm.admitted["interactive"] == 50
        assert adm.total_rejected == 0

    def test_default_spec_covers_unnamed_tiers(self):
        adm = TokenBucketAdmission(default=TierSpec(rate_hz=1.0, burst=1))
        assert adm.admit("anything", 0.0)
        assert not adm.admit("anything", 0.0)
        assert adm.admit("other", 0.0)  # its own bucket

    def test_spec_validation(self):
        with pytest.raises(ConfigError, match="rate_hz"):
            TierSpec(rate_hz=0.0)
        with pytest.raises(ConfigError, match="burst"):
            TierSpec(rate_hz=1.0, burst=0.5)
        with pytest.raises(ConfigError, match="limits nothing"):
            check_admission_spec({"tiers": {}})
        with pytest.raises(ConfigError, match=r"admission\.tiers\.free\.rate"):
            check_admission_spec({"tiers": {"free": {"rate": 1.0}}})
        adm = admission_from_dict(
            {"tiers": {"free": {"rate_hz": 0.5, "burst": 4}}}
        )
        assert adm.tiers["free"].burst == 4


class TestFarmAdmission:
    def shed_farm(self, *, coalesce=True, k=16):
        # 16 distinct frames flash in from the free tier within 1 s;
        # the bucket admits 4 then sheds.  A standard-tier session runs
        # untouched alongside.
        sessions = (
            SessionSpec(name="flood", kind="browse", arrival="flash",
                        requests=k, burst_s=1.0, steps=k, cores=64,
                        tier="free"),
            SessionSpec(name="calm", arrival="closed", requests=4, steps=2,
                        cores=64, think_s=0.5),
        )
        return run_farm(
            sessions, seconds=5.0, total_nodes=512, min_nodes=16,
            max_nodes=16, coalesce=coalesce,
            admission=TokenBucketAdmission(
                {"free": TierSpec(rate_hz=0.5, burst=4)}
            ),
        )

    def test_overload_sheds_only_the_limited_tier(self):
        farm, result = self.shed_farm()
        assert len(result.rejected) > 0
        assert all(r.request.tier == "free" for r in result.rejected)
        assert all(r.rejected for r in result.rejected)
        # Served records never carry the flag; percentiles stay clean.
        assert not any(r.rejected for r in result.records)
        assert result.arrivals == 20
        spans = [s for s in result.trace.spans if s.cat == CAT_ADMIT]
        assert len(spans) == len(result.rejected)
        assert result.accounting_failures() == []

    def test_closed_session_survives_shedding(self):
        # Every 'calm' request completes even while the flood is shed.
        _, result = self.shed_farm()
        calm = [r for r in result.records if r.request.session == "calm"]
        assert len(calm) == 4

    def test_rejected_requests_never_render(self):
        farm, result = self.shed_farm()
        assert farm.backend.plan_misses == result.rendered
        assert result.rendered < result.arrivals

    def test_coalesced_and_cached_requests_are_never_shed(self):
        # A single-frame crowd from the limited tier: the primary
        # spends the only token, every duplicate coalesces for free.
        farm, result = run_farm(
            [crowd(12, tier="free")], seconds=30.0, total_nodes=64,
            min_nodes=64, max_nodes=64,
            admission=TokenBucketAdmission(
                {"free": TierSpec(rate_hz=0.01, burst=1)}
            ),
        )
        assert len(result.rejected) == 0
        assert result.coalesced == 11
        assert farm.admission.total_admitted == 1

    def test_summary_reconciles_per_tier(self):
        farm, result = self.shed_farm()
        s = result.summary()["admission"]
        assert s["rejected"] == len(result.rejected)
        assert s["per_tier"]["free"]["rejected"] == len(result.rejected)
        assert 0.0 < s["shed_rate"] < 1.0


class TestAutoscalePolicies:
    def test_reactive_targets(self):
        p = ReactiveAutoscaler(min_nodes=64, max_nodes=1024, interval_s=10.0)
        grow = p.target(now=0, provisioned=128, busy_nodes=128,
                        queue_depth=3, total_nodes=2048)
        assert grow == 256
        hold = p.target(now=0, provisioned=128, busy_nodes=64,
                        queue_depth=0, total_nodes=2048)
        assert hold == 128
        shrink = p.target(now=0, provisioned=128, busy_nodes=0,
                          queue_depth=0, total_nodes=2048)
        assert shrink == 64
        capped = p.target(now=0, provisioned=1024, busy_nodes=1024,
                          queue_depth=9, total_nodes=2048)
        assert capped == 1024  # clamped at max_nodes

    def test_spec_validation(self):
        with pytest.raises(ConfigError, match="policy"):
            check_autoscale_spec({"policy": "psychic"})
        with pytest.raises(ConfigError, match="needs 'nodes'"):
            check_autoscale_spec({"policy": "static"})
        with pytest.raises(ConfigError, match=r"autoscale\.max_node"):
            check_autoscale_spec({"policy": "reactive", "max_node": 8})
        with pytest.raises(ConfigError, match="min_nodes"):
            ReactiveAutoscaler(min_nodes=0)
        with pytest.raises(ConfigError, match="low_util"):
            ReactiveAutoscaler(low_util=0.9, high_util=0.5)
        assert isinstance(autoscale_from_dict({"policy": "static", "nodes": 64}),
                          StaticPool)
        assert isinstance(autoscale_from_dict({"policy": "reactive"}),
                          ReactiveAutoscaler)


class TestFarmAutoscale:
    def busy_sessions(self):
        return (
            SessionSpec(name="load", arrival="closed", requests=12, steps=12,
                        cores=64, think_s=0.0),
            SessionSpec(name="load2", arrival="closed", requests=12, steps=12,
                        cores=64, think_s=0.0),
        )

    def test_static_pool_bills_exactly_its_size(self):
        _, result = run_farm(
            self.busy_sessions(), seconds=5.0, total_nodes=512,
            min_nodes=16, max_nodes=16, cache_entries=0, coalesce=False,
            autoscaler=StaticPool(nodes=64),
        )
        assert result.provisioned_node_s == pytest.approx(64 * result.makespan_s)
        assert result.node_hours < 512 * result.makespan_s / 3600.0
        assert result.accounting_failures() == []

    def test_static_pool_caps_concurrency(self):
        # 64 provisioned nodes = at most 4 concurrent 16-node jobs.
        farm, _ = run_farm(
            self.busy_sessions(), seconds=5.0, total_nodes=512,
            min_nodes=16, max_nodes=16, cache_entries=0, coalesce=False,
            autoscaler=StaticPool(nodes=64),
        )
        for _, (lo, hi), _, _ in farm.allocation_log:
            assert hi <= 64  # never allocates behind the fence

    def test_reactive_pool_grows_under_pressure_and_shrinks_after(self):
        # A flash flood of distinct frames piles a queue on the 16-node
        # floor; the pool doubles toward it, drains the flood, then
        # halves back down while the closed tail spends most of the run
        # thinking.
        sessions = (
            SessionSpec(name="flood", kind="browse", arrival="flash",
                        requests=16, burst_s=1.0, steps=16, cores=64),
            SessionSpec(name="tail", kind="orbit", arrival="closed",
                        requests=4, steps=4, cores=64, think_s=40.0),
        )
        farm, result = run_farm(
            sessions, seconds={"flood": 10.0, "tail": 2.0}, total_nodes=512,
            min_nodes=16, max_nodes=16, cache_entries=0, coalesce=False,
            autoscaler=ReactiveAutoscaler(
                min_nodes=16, max_nodes=256, interval_s=5.0
            ),
        )
        a = result.autoscale
        assert a["scale_events"] > 0
        assert a["max_provisioned"] > 16  # grew under queue pressure
        assert a["max_provisioned"] <= 256
        # Shrank again once the flood drained.
        assert any(new < old for _, old, new in a["events"])
        assert a["final_provisioned"] < a["max_provisioned"]
        # Billed node-seconds sit strictly between always-min and machine.
        assert 16 * result.makespan_s < result.provisioned_node_s
        assert result.provisioned_node_s < 512 * result.makespan_s
        assert result.accounting_failures() == []

    def test_job_larger_than_pool_cap_fails_loudly(self):
        with pytest.raises(ConfigError, match="can provision at most"):
            run_farm(
                [SessionSpec(name="s", requests=1, arrival="closed", cores=1024)],
                total_nodes=512, min_nodes=256, max_nodes=256,
                autoscaler=ReactiveAutoscaler(min_nodes=16, max_nodes=64),
            )

    def test_autoscaled_runs_are_deterministic(self):
        def go():
            return run_farm(
                self.busy_sessions(), seconds=20.0, total_nodes=512,
                min_nodes=16, max_nodes=16, cache_entries=0,
                autoscaler=ReactiveAutoscaler(
                    min_nodes=16, max_nodes=256, interval_s=5.0
                ),
            )[1]

        assert go().summary() == go().summary()
