"""Session kinds, arrival streams, and workload determinism."""

import numpy as np
import pytest

from repro.farm.workload import SessionSpec, Workload
from repro.utils.errors import ConfigError


class TestSessionKinds:
    def test_browse_cycles_steps(self):
        spec = SessionSpec(name="s", kind="browse", requests=10, steps=4)
        steps = [spec.request(i).step for i in range(10)]
        assert steps == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_browse_revisits_share_frame_key(self):
        spec = SessionSpec(name="s", kind="browse", requests=8, steps=4)
        assert spec.request(0).frame_key == spec.request(4).frame_key
        assert spec.request(0).frame_key != spec.request(1).frame_key

    def test_orbit_advances_azimuth(self):
        spec = SessionSpec(name="s", kind="orbit", requests=5, orbit_deg=30.0)
        az = [spec.request(i).azimuth_deg for i in range(5)]
        assert az == [30.0, 60.0, 90.0, 120.0, 150.0]
        assert all(spec.request(i).step == 0 for i in range(5))

    def test_orbit_wraps_and_revisits(self):
        spec = SessionSpec(name="s", kind="orbit", requests=30, orbit_deg=45.0)
        assert spec.request(0).frame_key == spec.request(8).frame_key

    def test_multivar_alternates_variables(self):
        spec = SessionSpec(
            name="s", kind="multivar", requests=6, steps=3,
            variables=("pressure", "density"),
        )
        got = [(spec.request(i).step, spec.request(i).variable) for i in range(6)]
        assert got == [
            (0, "pressure"), (0, "density"),
            (1, "pressure"), (1, "density"),
            (2, "pressure"), (2, "density"),
        ]

    def test_cross_session_same_frame(self):
        a = SessionSpec(name="a", kind="browse", requests=4, steps=4)
        b = SessionSpec(name="b", kind="browse", requests=4, steps=4)
        assert a.request(2).frame_key == b.request(2).frame_key
        assert a.request(2).rid != b.request(2).rid


class TestArrivals:
    def test_open_interarrivals_deterministic(self):
        spec = SessionSpec(name="s", arrival="open", requests=20, rate_hz=0.5)
        a = spec.interarrivals(7)
        b = spec.interarrivals(7)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (20,)
        assert (a > 0).all()

    def test_seed_and_name_shift_streams(self):
        spec = SessionSpec(name="s", arrival="open", requests=20, rate_hz=0.5)
        other = SessionSpec(name="t", arrival="open", requests=20, rate_hz=0.5)
        assert not np.array_equal(spec.interarrivals(7), spec.interarrivals(8))
        assert not np.array_equal(spec.interarrivals(7), other.interarrivals(7))

    def test_open_rate_sets_the_mean(self):
        spec = SessionSpec(name="s", arrival="open", requests=4000, rate_hz=0.25)
        assert np.mean(spec.interarrivals(3)) == pytest.approx(4.0, rel=0.1)

    def test_closed_think_times(self):
        spec = SessionSpec(name="s", arrival="closed", requests=10, think_s=2.0)
        t = spec.think_times(5)
        assert t.shape == (10,)
        assert (t >= 0).all()
        zero = SessionSpec(name="z", arrival="closed", requests=10, think_s=0.0)
        assert not zero.think_times(5).any()


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            SessionSpec(name="s", kind="doomscroll")

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ConfigError, match="arrival"):
            SessionSpec(name="s", arrival="psychic")

    def test_open_needs_positive_rate(self):
        with pytest.raises(ConfigError, match="rate_hz"):
            SessionSpec(name="s", arrival="open", rate_hz=0.0)

    def test_workload_rejects_duplicate_names(self):
        spec = SessionSpec(name="s")
        with pytest.raises(ConfigError, match="duplicate"):
            Workload(sessions=(spec, spec))

    def test_workload_counts_requests(self):
        w = Workload(
            sessions=(
                SessionSpec(name="a", requests=3),
                SessionSpec(name="b", requests=5),
            )
        )
        assert w.total_requests == 8
        assert w.session_index("b") == 1
