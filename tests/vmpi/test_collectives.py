"""Collective algorithms against their mathematical definitions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.errors import CommunicationError
from repro.vmpi import MPIWorld

SIZES = (2, 3, 4, 7, 8, 16)


def run(nprocs, program):
    return MPIWorld.for_cores(nprocs).run(program)


class TestBarrier:
    @pytest.mark.parametrize("p", SIZES)
    def test_barrier_synchronizes(self, p):
        def program(ctx):
            yield from ctx.compute(0.01 * ctx.rank)
            yield from ctx.barrier()
            return ctx.now

        res = run(p, program)
        # Nobody leaves before the slowest rank's compute finished.
        assert min(res.values) >= 0.01 * (p - 1)


class TestBcast:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("root", (0, 1))
    def test_bcast_delivers_everywhere(self, p, root):
        def program(ctx):
            data = {"v": 42} if ctx.rank == root else None
            return (yield from ctx.bcast(data, root=root))

        res = run(p, program)
        assert all(v == {"v": 42} for v in res.values)

    def test_bcast_numpy(self):
        def program(ctx):
            data = np.arange(100) if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0)
            return out.sum()

        res = run(8, program)
        assert all(v == 4950 for v in res.values)

    def test_bad_root_rejected(self):
        def program(ctx):
            yield from ctx.bcast(1, root=9)

        with pytest.raises(CommunicationError, match="root"):
            run(4, program)


class TestReduceAllreduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_sum(self, p):
        def program(ctx):
            return (yield from ctx.reduce(ctx.rank + 1, op="sum", root=0))

        res = run(p, program)
        assert res[0] == p * (p + 1) // 2
        assert all(v is None for v in res.values[1:])

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("op,expected", [("max", lambda p: p - 1), ("min", lambda p: 0)])
    def test_allreduce_named_ops(self, p, op, expected):
        def program(ctx):
            return (yield from ctx.allreduce(ctx.rank, op=op))

        res = run(p, program)
        assert all(v == expected(p) for v in res.values)

    @pytest.mark.parametrize("p", SIZES)
    def test_allreduce_arrays_bitwise_identical(self, p):
        def program(ctx):
            local = np.full(16, float(ctx.rank))
            return (yield from ctx.allreduce(local, op="sum"))

        res = run(p, program)
        for v in res.values[1:]:
            assert np.array_equal(v, res[0])
        assert np.array_equal(res[0], np.full(16, sum(range(p))))

    def test_reduce_non_commutative_op_ordered(self):
        """String concatenation: associative, not commutative."""

        def program(ctx):
            return (yield from ctx.reduce(str(ctx.rank), op=lambda a, b: a + b, root=0))

        res = run(8, program)
        assert res[0] == "01234567"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=12))
    def test_allreduce_matches_numpy(self, p):
        if p % 4:
            p = 4 * ((p // 4) + 1)

        def program(ctx):
            local = np.arange(8) * (ctx.rank + 1)
            return (yield from ctx.allreduce(local, op="sum"))

        res = MPIWorld.for_cores(p).run(program)
        expected = np.arange(8) * sum(range(1, p + 1))
        assert np.array_equal(res[0], expected)


class TestGatherScatter:
    @pytest.mark.parametrize("p", SIZES)
    def test_gather_ordered(self, p):
        def program(ctx):
            return (yield from ctx.gather(ctx.rank * 2, root=0))

        res = run(p, program)
        assert res[0] == [2 * r for r in range(p)]

    @pytest.mark.parametrize("p", SIZES)
    def test_scatter_routes_items(self, p):
        def program(ctx):
            values = [f"item{r}" for r in range(ctx.size)] if ctx.rank == 0 else None
            return (yield from ctx.scatter(values, root=0))

        res = run(p, program)
        assert res.values == [f"item{r}" for r in range(p)]

    def test_scatter_gather_roundtrip(self):
        def program(ctx):
            values = list(range(ctx.size)) if ctx.rank == 1 else None
            mine = yield from ctx.scatter(values, root=1)
            back = yield from ctx.gather(mine, root=1)
            return back

        res = run(8, program)
        assert res[1] == list(range(8))

    def test_scatter_wrong_length_rejected(self):
        def program(ctx):
            values = [1, 2] if ctx.rank == 0 else None
            yield from ctx.scatter(values, root=0)

        with pytest.raises(CommunicationError, match="exactly"):
            run(4, program)

    @pytest.mark.parametrize("p", SIZES)
    def test_allgather(self, p):
        def program(ctx):
            return (yield from ctx.allgather(ctx.rank**2))

        res = run(p, program)
        assert all(v == [r * r for r in range(p)] for v in res.values)


class TestAlltoall:
    @pytest.mark.parametrize("p", (2, 3, 4, 8))
    def test_alltoall_transposes(self, p):
        def program(ctx):
            values = [(ctx.rank, d) for d in range(ctx.size)]
            return (yield from ctx.alltoall(values))

        res = run(p, program)
        for r, out in enumerate(res.values):
            assert out == [(s, r) for s in range(p)]

    @pytest.mark.parametrize("p", (2, 4, 8))
    def test_alltoallv_sparse(self, p):
        def program(ctx):
            by_dest = {(ctx.rank + 1) % ctx.size: ctx.rank, ctx.rank: "self"}
            return (yield from ctx.alltoallv(by_dest))

        res = run(p, program)
        for r, out in enumerate(res.values):
            assert out == {(r - 1) % p: (r - 1) % p, r: "self"}

    def test_alltoallv_empty(self):
        def program(ctx):
            return (yield from ctx.alltoallv({}))

        res = run(4, program)
        assert all(v == {} for v in res.values)

    def test_alltoallv_bad_dest(self):
        def program(ctx):
            yield from ctx.alltoallv({99: 1})

        with pytest.raises(CommunicationError, match="out of range"):
            run(4, program)


class TestCollectiveSequencing:
    def test_back_to_back_collectives_do_not_cross_talk(self):
        def program(ctx):
            a = yield from ctx.allreduce(1, op="sum")
            b = yield from ctx.allreduce(ctx.rank, op="max")
            c = yield from ctx.bcast("z" if ctx.rank == 0 else None, root=0)
            return (a, b, c)

        res = run(8, program)
        assert all(v == (8, 7, "z") for v in res.values)


class TestReduceScatterScan:
    @pytest.mark.parametrize("p", (2, 4, 8, 16))
    def test_reduce_scatter_sum(self, p):
        def program(ctx):
            values = [np.full(4, float(ctx.rank * 10 + slot)) for slot in range(ctx.size)]
            return (yield from ctx.reduce_scatter(values, op="sum"))

        res = run(p, program)
        for r, out in enumerate(res.values):
            expected = sum(s * 10 + r for s in range(p))
            assert np.array_equal(out, np.full(4, float(expected)))

    @pytest.mark.parametrize("p", (3, 6))
    def test_reduce_scatter_non_power_of_two(self, p):
        def program(ctx):
            values = [ctx.rank * 100 + slot for slot in range(ctx.size)]
            return (yield from ctx.reduce_scatter(values, op="sum"))

        res = run(p, program)
        for r, out in enumerate(res.values):
            assert out == sum(s * 100 + r for s in range(p))

    def test_reduce_scatter_max(self):
        def program(ctx):
            values = [(ctx.rank + slot) % ctx.size for slot in range(ctx.size)]
            return (yield from ctx.reduce_scatter(values, op="max"))

        res = run(8, program)
        assert all(v == 7 for v in res.values)

    def test_reduce_scatter_wrong_length(self):
        def program(ctx):
            yield from ctx.reduce_scatter([1, 2])

        with pytest.raises(CommunicationError, match="exactly"):
            run(4, program)

    @pytest.mark.parametrize("p", SIZES)
    def test_scan_prefix_sums(self, p):
        def program(ctx):
            return (yield from ctx.scan(ctx.rank + 1, op="sum"))

        res = run(p, program)
        assert res.values == [sum(range(1, r + 2)) for r in range(p)]

    def test_scan_non_commutative_string(self):
        def program(ctx):
            return (yield from ctx.scan(str(ctx.rank), op=lambda a, b: a + b))

        res = run(5, program)
        assert res.values == ["0", "01", "012", "0123", "01234"]
