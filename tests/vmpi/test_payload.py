"""Payload sizing and snapshot semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.errors import CommunicationError
from repro.vmpi.payload import VirtualPayload, payload_nbytes, snapshot


class TestVirtualPayload:
    def test_size_preserved(self):
        assert payload_nbytes(VirtualPayload(12345)) == 12345

    def test_negative_rejected(self):
        with pytest.raises(CommunicationError):
            VirtualPayload(-1)

    def test_equality_by_size(self):
        assert VirtualPayload(10) == VirtualPayload(10)
        assert VirtualPayload(10) != VirtualPayload(11)


class TestPayloadNbytes:
    def test_numpy_exact(self):
        a = np.zeros((10, 10), dtype=np.float32)
        assert payload_nbytes(a) == 400

    def test_bytes_exact(self):
        assert payload_nbytes(b"abcd") == 4

    def test_scalars_have_envelope(self):
        assert payload_nbytes(3) == 16
        assert payload_nbytes(None) == 16

    def test_containers_sum(self):
        a = np.zeros(10, dtype=np.float64)
        assert payload_nbytes([a, a]) == 16 + 2 * 80
        assert payload_nbytes({"k": a}) == 16 + (1 + 16) + 80

    @given(st.integers(min_value=0, max_value=1000))
    def test_string_size_grows(self, n):
        assert payload_nbytes("x" * n) == n + 16

    def test_object_with_nbytes_attr(self):
        class Img:
            nbytes = 4096

        assert payload_nbytes(Img()) == 4096


class TestSnapshot:
    def test_ndarray_copied(self):
        a = np.arange(5)
        s = snapshot(a)
        a[0] = 99
        assert s[0] == 0

    def test_nested_containers_copied(self):
        a = np.arange(3)
        s = snapshot({"x": [a, (a,)]})
        a[:] = -1
        assert s["x"][0][0] == 0
        assert s["x"][1][0][0] == 0

    def test_scalars_pass_through(self):
        assert snapshot(5) == 5
        assert snapshot("s") == "s"

    def test_virtual_payload_passes_through(self):
        v = VirtualPayload(7)
        assert snapshot(v) is v


class TestOps:
    def test_named_ops(self):
        from repro.vmpi.ops import resolve_op

        assert resolve_op("sum")(2, 3) == 5
        assert resolve_op("prod")(2, 3) == 6
        assert resolve_op("max")(2, 3) == 3
        assert resolve_op("min")(2, 3) == 2

    def test_named_ops_elementwise_on_arrays(self):
        from repro.vmpi.ops import resolve_op

        a = np.array([1.0, 5.0])
        b = np.array([4.0, 2.0])
        assert np.array_equal(resolve_op("max")(a, b), [4.0, 5.0])
        assert np.array_equal(resolve_op("prod")(a, b), [4.0, 10.0])

    def test_callable_passthrough(self):
        from repro.vmpi.ops import resolve_op

        fn = lambda a, b: a - b  # noqa: E731
        assert resolve_op(fn) is fn

    def test_unknown_op_rejected(self):
        from repro.utils.errors import CommunicationError
        from repro.vmpi.ops import resolve_op

        with pytest.raises(CommunicationError, match="unknown reduce op"):
            resolve_op("median")
