"""MessageBoard matching semantics, property-checked.

MPI ordering guarantee: messages between one (source, dest) pair with
matching tags are received in send order; wildcards match the earliest
arrival.  These properties underpin every collective.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.mapping import RankMapping
from repro.machine.partition import Partition
from repro.network.desnet import DESNetwork
from repro.network.topology import TorusTopology
from repro.sim.engine import Engine
from repro.utils.errors import CommunicationError
from repro.vmpi.comm import ANY_SOURCE, ANY_TAG, MessageBoard


def make_board(nprocs=8):
    part = Partition(max(nprocs // 4, 1) * 2, processes_per_node=4)
    eng = Engine()
    net = DESNetwork(eng, TorusTopology(part.shape, torus=part.is_torus), RankMapping(part))
    return eng, MessageBoard(net, part.nprocs)


class TestMatchingSemantics:
    def test_fifo_per_pair_and_tag(self):
        eng, board = make_board()
        for i in range(5):
            board.post_send(0, 1, tag=7, payload=i)
        got = []
        for _ in range(5):
            req = board.post_recv(1, source=0, tag=7)
            req.future.add_done_callback(lambda v: got.append(v[0]))
        eng.run()
        assert got == [0, 1, 2, 3, 4]

    def test_wildcard_tag_takes_earliest_arrival(self):
        eng, board = make_board()
        board.post_send(0, 1, tag=5, payload="first")
        board.post_send(0, 1, tag=9, payload="second")
        eng.run()  # both delivered
        req = board.post_recv(1, source=0, tag=ANY_TAG)
        assert req.complete
        payload, status = req.future.value
        assert payload == "first"
        assert status.tag == 5

    def test_specific_tag_skips_nonmatching(self):
        eng, board = make_board()
        board.post_send(0, 1, tag=5, payload="a")
        board.post_send(0, 1, tag=9, payload="b")
        eng.run()
        req = board.post_recv(1, source=0, tag=9)
        payload, _ = req.future.value
        assert payload == "b"
        # The tag-5 message is still waiting.
        assert board.unreceived_count() == 1

    def test_pending_recv_matches_on_arrival(self):
        eng, board = make_board()
        req = board.post_recv(1, source=ANY_SOURCE, tag=3)
        assert not req.complete
        board.post_send(2, 1, tag=3, payload="late")
        eng.run()
        assert req.complete
        assert req.future.value[0] == "late"
        assert req.future.value[1].source == 2

    def test_pending_recvs_match_in_posted_order(self):
        eng, board = make_board()
        r1 = board.post_recv(1, source=ANY_SOURCE, tag=ANY_TAG)
        r2 = board.post_recv(1, source=ANY_SOURCE, tag=ANY_TAG)
        board.post_send(0, 1, tag=1, payload="x")
        eng.run()
        assert r1.complete and not r2.complete
        board.post_send(0, 1, tag=2, payload="y")
        eng.run()
        assert r2.complete

    def test_negative_send_tag_rejected(self):
        _eng, board = make_board()
        with pytest.raises(CommunicationError, match="tag"):
            board.post_send(0, 1, tag=-1, payload=None)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # source
                st.integers(min_value=0, max_value=4),  # tag
            ),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_every_send_eventually_matches_a_wildcard_recv(self, sends, seed):
        """N sends + N wildcard receives always pair up completely."""
        eng, board = make_board()
        for i, (src, tag) in enumerate(sends):
            board.post_send(src, 5, tag=tag, payload=i)
        reqs = [board.post_recv(5, ANY_SOURCE, ANY_TAG) for _ in sends]
        eng.run()
        got = sorted(r.future.value[0] for r in reqs)
        assert got == list(range(len(sends)))
        assert board.unreceived_count() == 0
        assert board.pending_recv_count() == 0
