"""MPIWorld mechanics."""

import pytest

from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld, VirtualPayload


class TestWorld:
    def test_for_cores_shapes_partition(self):
        w = MPIWorld.for_cores(64)
        assert w.nprocs == 64
        assert w.partition.shape == (2, 2, 4)

    def test_run_returns_per_rank_values(self):
        def program(ctx):
            yield from ctx.barrier()
            return ctx.rank * 3

        res = MPIWorld.for_cores(8).run(program)
        assert res.values == [r * 3 for r in range(8)]
        assert len(res) == 8
        assert list(res) == res.values
        assert res[2] == 6

    def test_world_reusable_across_runs(self):
        w = MPIWorld.for_cores(4)

        def program(ctx):
            yield from ctx.barrier()
            return ctx.now

        r1 = w.run(program)
        r2 = w.run(program)
        assert r1.elapsed_s == r2.elapsed_s  # deterministic, fresh engine each run

    def test_args_passed_to_program(self):
        def program(ctx, a, b=0):
            yield from ctx.barrier()
            return a + b + ctx.rank

        res = MPIWorld.for_cores(4).run(program, 10, b=5)
        assert res.values == [15, 16, 17, 18]

    def test_virtual_payload_moves_no_data(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(VirtualPayload(1 << 30), dest=1)
                return None
            if ctx.rank == 1:
                v = yield from ctx.recv(source=0)
                return v.nbytes
            return None

        res = MPIWorld.for_cores(4).run(program)
        assert res[1] == 1 << 30
        assert res.bytes_sent == 1 << 30

    def test_elapsed_scales_with_virtual_size(self):
        def program(ctx, nbytes):
            if ctx.rank == 0:
                yield from ctx.send(VirtualPayload(nbytes), dest=1)
            elif ctx.rank == 1:
                yield from ctx.recv(source=0)
            return None

        # SMP mode (1 rank/node) so the message actually crosses the wire.
        w = MPIWorld.for_cores(4, processes_per_node=1)
        small = w.run(program, 1 << 10).elapsed_s
        big = w.run(program, 1 << 26).elapsed_s
        assert big > 10 * small

    def test_invalid_core_count(self):
        with pytest.raises(ConfigError):
            MPIWorld.for_cores(0)
