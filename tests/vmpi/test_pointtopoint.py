"""Point-to-point semantics of the simulated MPI."""

import numpy as np
import pytest

from repro.utils.errors import CommunicationError
from repro.vmpi import ANY_SOURCE, ANY_TAG, MPIWorld


def run(nprocs, program, **kwargs):
    return MPIWorld.for_cores(nprocs, **kwargs).run(program)


class TestSendRecv:
    def test_basic_send_recv(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send({"a": 1}, dest=1, tag=5)
                return None
            if ctx.rank == 1:
                data = yield from ctx.recv(source=0, tag=5)
                return data
            return None

        res = run(4, program)
        assert res[1] == {"a": 1}

    def test_numpy_payload_copied_on_send(self):
        """Mutating the send buffer after isend must not corrupt delivery."""

        def program(ctx):
            if ctx.rank == 0:
                buf = np.arange(4)
                req = ctx.isend(buf, dest=1, tag=1)
                buf[:] = -1  # sender reuses the buffer immediately
                yield from ctx.wait(req)
                return None
            if ctx.rank == 1:
                return (yield from ctx.recv(source=0, tag=1))
            return None

        res = run(4, program)
        assert np.array_equal(res[1], [0, 1, 2, 3])

    def test_tag_matching(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send("first", dest=1, tag=10)
                yield from ctx.send("second", dest=1, tag=20)
                return None
            if ctx.rank == 1:
                b = yield from ctx.recv(source=0, tag=20)
                a = yield from ctx.recv(source=0, tag=10)
                return (a, b)
            return None

        res = run(4, program)
        assert res[1] == ("first", "second")

    def test_any_source_any_tag(self):
        def program(ctx):
            if ctx.rank != 0:
                yield from ctx.send(ctx.rank, dest=0, tag=ctx.rank)
                return None
            got = set()
            for _ in range(ctx.size - 1):
                payload, status = yield from ctx.recv_status(source=ANY_SOURCE, tag=ANY_TAG)
                assert payload == status.source == status.tag
                got.add(payload)
            return got

        res = run(4, program)
        assert res[0] == {1, 2, 3}

    def test_message_order_preserved_same_pair(self):
        def program(ctx):
            if ctx.rank == 0:
                for i in range(10):
                    yield from ctx.send(i, dest=1, tag=3)
                return None
            if ctx.rank == 1:
                out = []
                for _ in range(10):
                    out.append((yield from ctx.recv(source=0, tag=3)))
                return out
            return None

        res = run(2, program)
        assert res[1] == list(range(10))

    def test_sendrecv_swaps(self):
        def program(ctx):
            partner = ctx.rank ^ 1
            other = yield from ctx.sendrecv(ctx.rank * 10, dest=partner, source=partner, tag=2)
            return other

        res = run(4, program)
        assert res.values == [10, 0, 30, 20]

    def test_irecv_posted_before_send(self):
        def program(ctx):
            if ctx.rank == 1:
                req = ctx.irecv(source=0, tag=9)
                yield from ctx.barrier()
                payload, _status = yield req.future
                return payload
            yield from ctx.barrier()
            if ctx.rank == 0:
                yield from ctx.send("late", dest=1, tag=9)
            return None

        res = run(2, program)
        assert res[1] == "late"

    def test_bad_destination_raises(self):
        def program(ctx):
            yield from ctx.send(1, dest=99)

        with pytest.raises(CommunicationError, match="out of range"):
            run(2, program)

    def test_unreceived_message_detected(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send("orphan", dest=1, tag=1)
            return None

        with pytest.raises(CommunicationError, match="never received"):
            run(2, program)

    def test_unreceived_error_names_each_endpoint(self):
        """The leak diagnostic lists every orphaned (src, dst, tag)
        triple so a hung collective can be localized from the message."""

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send("a", dest=1, tag=7)
                yield from ctx.send("b", dest=2, tag=3)
            return None

        with pytest.raises(CommunicationError) as exc:
            run(3, program)
        msg = str(exc.value)
        assert "2 messages" in msg
        assert "(src=0, dst=1, tag=7)" in msg
        assert "(src=0, dst=2, tag=3)" in msg

    def test_unreceived_error_truncates_long_lists(self):
        def program(ctx):
            if ctx.rank == 0:
                for t in range(25):
                    yield from ctx.send(t, dest=1, tag=t)
            return None

        with pytest.raises(CommunicationError) as exc:
            run(2, program)
        msg = str(exc.value)
        assert "25 messages" in msg
        assert "(src=0, dst=1, tag=19)" in msg  # 20th triple shown
        assert "(src=0, dst=1, tag=20)" not in msg
        assert "... and 5 more" in msg

    def test_waitall_returns_payloads(self):
        def program(ctx):
            if ctx.rank == 0:
                reqs = [ctx.irecv(source=s, tag=1) for s in range(1, ctx.size)]
                vals = yield from ctx.waitall(reqs)
                return vals
            yield from ctx.send(ctx.rank**2, dest=0, tag=1)
            return None

        res = run(4, program)
        assert res[0] == [1, 4, 9]


class TestTiming:
    def test_simulated_time_advances_with_traffic(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(np.zeros(1 << 18), dest=1)
            elif ctx.rank == 1:
                yield from ctx.recv(source=0)
            return ctx.now

        res = run(2, program)
        assert res.elapsed_s > 0

    def test_compute_advances_local_clock(self):
        def program(ctx):
            yield from ctx.compute(0.25 * (ctx.rank + 1))
            return ctx.now

        res = run(2, program)
        assert res[0] == pytest.approx(0.25)
        assert res[1] == pytest.approx(0.5)
        assert res.compute_seconds == [0.25, 0.5]
