"""Sub-communicators (MPI_Comm_split semantics)."""

import numpy as np
import pytest

from repro.utils.errors import CommunicationError
from repro.vmpi import MPIWorld


def run(p, program):
    return MPIWorld.for_cores(p).run(program)


class TestSplit:
    def test_groups_by_color(self):
        def program(ctx):
            group = yield from ctx.split(ctx.rank % 2)
            return group.rank, group.size

        res = run(8, program)
        for parent_rank, (grank, gsize) in enumerate(res.values):
            assert gsize == 4
            assert grank == parent_rank // 2

    def test_key_reorders_group(self):
        def program(ctx):
            # Reverse ordering within one group of everyone.
            group = yield from ctx.split("all", key=-ctx.rank)
            return group.rank

        res = run(4, program)
        assert res.values == [3, 2, 1, 0]

    def test_group_collectives_are_isolated(self):
        def program(ctx):
            group = yield from ctx.split(ctx.rank % 2)
            total = yield from group.allreduce(ctx.rank, op="sum")
            gathered = yield from group.gather(ctx.rank, root=0)
            return total, gathered

        res = run(8, program)
        evens = sum(r for r in range(8) if r % 2 == 0)
        odds = sum(r for r in range(8) if r % 2 == 1)
        for r, (total, gathered) in enumerate(res.values):
            assert total == (evens if r % 2 == 0 else odds)
            if gathered is not None:
                assert gathered == ([0, 2, 4, 6] if r % 2 == 0 else [1, 3, 5, 7])

    def test_group_p2p_translates_ranks(self):
        def program(ctx):
            group = yield from ctx.split(ctx.rank < 2)
            # Within each pair, group rank 0 <-> 1.
            peer = group.rank ^ 1
            got = yield from group.sendrecv(ctx.rank, dest=peer, source=peer, tag=4)
            return got

        res = run(4, program)
        assert res.values == [1, 0, 3, 2]

    def test_recv_status_source_is_group_rank(self):
        def program(ctx):
            group = yield from ctx.split(0)  # everyone together
            if group.rank == 2:
                yield from group.send("hi", dest=0, tag=1)
            if group.rank == 0:
                _payload, status = yield from group.recv_status(tag=1)
                return status.source
            return None

        res = run(4, program)
        assert res[0] == 2

    def test_concurrent_groups_same_tags_no_crosstalk(self):
        def program(ctx):
            group = yield from ctx.split(ctx.rank % 2)
            # Both groups use identical tags simultaneously.
            peer = (group.rank + 1) % group.size
            src = (group.rank - 1) % group.size
            got = yield from group.sendrecv(("c", ctx.rank % 2), dest=peer, source=src, tag=9)
            return got

        res = run(8, program)
        for r, (tag, color) in enumerate(res.values):
            assert tag == "c" and color == r % 2

    def test_nested_split(self):
        def program(ctx):
            half = yield from ctx.split(ctx.rank // 4)  # two halves of 4
            quarter = yield from half.split(half.rank // 2)  # pairs
            s = yield from quarter.allreduce(ctx.rank, op="sum")
            return quarter.size, s

        res = run(8, program)
        for r, (qsize, s) in enumerate(res.values):
            assert qsize == 2
            partner = r ^ 1
            assert s == r + partner

    def test_parent_still_usable_after_split(self):
        def program(ctx):
            group = yield from ctx.split(ctx.rank % 2)
            sub_total = yield from group.allreduce(1, op="sum")
            full_total = yield from ctx.allreduce(sub_total, op="sum")
            return full_total

        res = run(8, program)
        assert all(v == 8 * 4 for v in res.values)

    def test_numpy_payloads_through_group(self):
        def program(ctx):
            group = yield from ctx.split(ctx.rank % 2)
            out = yield from group.allreduce(np.full(8, float(group.rank)), op="max")
            return out

        res = run(8, program)
        for v in res.values:
            assert np.array_equal(v, np.full(8, 3.0))

    def test_bad_group_rank_rejected(self):
        def program(ctx):
            group = yield from ctx.split(ctx.rank % 2)
            yield from group.send(1, dest=group.size)  # out of range

        with pytest.raises(CommunicationError, match="out of range"):
            run(4, program)
