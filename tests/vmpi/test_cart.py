"""Cartesian grid helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.errors import CommunicationError
from repro.vmpi.cart import CartGrid


class TestCartGrid:
    def test_roundtrip(self):
        grid = CartGrid((2, 3, 4))
        for rank in range(grid.size):
            assert grid.rank_of(grid.coords_of(rank)) == rank

    @given(
        st.tuples(
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=5),
        )
    )
    def test_bijection(self, dims):
        grid = CartGrid(dims)
        coords = {grid.coords_of(r) for r in range(grid.size)}
        assert len(coords) == grid.size

    def test_x_fastest(self):
        grid = CartGrid((2, 2, 3))
        assert grid.coords_of(0) == (0, 0, 0)
        assert grid.coords_of(1) == (0, 0, 1)
        assert grid.coords_of(3) == (0, 1, 0)

    def test_neighbors(self):
        grid = CartGrid((2, 2, 2))
        assert grid.neighbor(0, 2, +1) == 1
        assert grid.neighbor(0, 1, +1) == 2
        assert grid.neighbor(0, 0, +1) == 4
        assert grid.neighbor(0, 2, -1) is None  # boundary, not periodic
        assert grid.neighbor(7, 0, +1) is None

    def test_neighbor_symmetry(self):
        grid = CartGrid((3, 3, 3))
        for rank in range(grid.size):
            for axis in range(3):
                nbr = grid.neighbor(rank, axis, +1)
                if nbr is not None:
                    assert grid.neighbor(nbr, axis, -1) == rank

    def test_shift(self):
        grid = CartGrid((1, 1, 4))
        assert grid.shift(1, 2) == (0, 2)
        assert grid.shift(0, 2) == (None, 1)

    def test_invalid(self):
        grid = CartGrid((2, 2, 2))
        with pytest.raises(CommunicationError):
            grid.coords_of(8)
        with pytest.raises(CommunicationError):
            grid.neighbor(0, 3, +1)
        with pytest.raises(CommunicationError):
            grid.neighbor(0, 0, 2)
