"""Distributed FrameBuffer: exactness, overlap, and failover.

DFB reuses the direct-send schedule as its tile-ownership map, so the
pixels (and the message/byte totals) must match direct-send exactly;
what it buys is *time* — pieces enter the wire while later rays still
march, so compositing partially hides inside the render stage.
"""

import numpy as np
import pytest

from repro.compositing.dfb import dfb_compose, dfb_compose_failover
from repro.compositing.directsend import (
    assemble_final_image,
    assemble_tiles,
    direct_send_compose,
)
from repro.compositing.schedule import schedule_from_geometry
from repro.fault import FaultPlan, NodeCrash
from repro.fault.failover import check_exact_cover
from repro.obs import Tracer
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.image import PartialImage
from repro.render.raycast import render_block
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)
W, H = 48, 40
STEP = 0.7
RENDER_S = 0.01  # a real march time so overlap is measurable


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(42)
    data = rng.random(GRID).astype(np.float32)
    cam = Camera.looking_at_volume(GRID, width=W, height=H, azimuth_deg=25, elevation_deg=30)
    return data, cam, TransferFunction.grayscale_ramp()


def make_partial(rank, dec, scene):
    data, cam, tf = scene
    b = dec.block(rank)
    rs, rc, gl = b.ghost_read(GRID, ghost=1)
    sub = data[rs[0]: rs[0] + rc[0], rs[1]: rs[1] + rc[1], rs[2]: rs[2] + rc[2]]
    return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, step=STEP)


def run_directsend(nprocs, m, scene, tracer=None):
    _data, cam, _tf = scene
    dec = BlockDecomposition(GRID, nprocs)
    sched = schedule_from_geometry(dec, cam, m)

    def program(ctx):
        partial = make_partial(ctx.rank, dec, scene)
        t0 = ctx.now
        yield from ctx.compute(RENDER_S)
        if ctx.tracer is not None:
            ctx.tracer.stage(ctx.rank, "render", t0, ctx.now)
        t1 = ctx.now
        tile = yield from direct_send_compose(ctx, partial, sched)
        final = yield from assemble_final_image(ctx, tile, sched, root=0)
        if ctx.tracer is not None:
            ctx.tracer.stage(ctx.rank, "composite", t1, ctx.now)
        return final

    world = MPIWorld.for_cores(nprocs)
    world.tracer = tracer
    return world.run(program)


def run_dfb(nprocs, m, scene, tracer=None):
    _data, cam, _tf = scene
    dec = BlockDecomposition(GRID, nprocs)
    sched = schedule_from_geometry(dec, cam, m)

    def program(ctx):
        partial = make_partial(ctx.rank, dec, scene)
        return (yield from dfb_compose(ctx, partial, sched, RENDER_S))

    world = MPIWorld.for_cores(nprocs)
    world.tracer = tracer
    return world.run(program)


class TestDFBExactness:
    @pytest.mark.parametrize("nprocs,m", [(4, 4), (8, 8), (8, 3), (16, 4)])
    def test_bitwise_matches_directsend(self, nprocs, m, scene):
        ds = run_directsend(nprocs, m, scene)
        dfb = run_dfb(nprocs, m, scene)
        assert np.array_equal(ds[0], dfb[0])
        assert dfb.messages == ds.messages
        assert dfb.bytes_sent == ds.bytes_sent

    def test_offscreen_partial_still_satisfies_schedule(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8)
        sched = schedule_from_geometry(dec, cam, 4)

        def program(ctx):
            partial = make_partial(ctx.rank, dec, scene) if ctx.rank != 3 else None
            return (yield from dfb_compose(ctx, partial, sched, RENDER_S))

        res = MPIWorld.for_cores(8).run(program)
        assert res[0] is not None


class TestDFBOverlap:
    def test_compositing_hides_inside_render(self, scene):
        """Pieces travel during the march: the frame finishes earlier
        and the post-render composite window shrinks."""
        ds = run_directsend(8, 8, scene)
        dfb = run_dfb(8, 8, scene)
        assert dfb.elapsed_s < ds.elapsed_s

    def test_pieces_arrive_during_the_march(self, scene):
        """Both paths record one 'recv piece' span per piece (posting
        the receive -> piece landing = compositor wait).  Under DFB the
        pieces traveled while rays still marched, so the owners' total
        wait collapses compared to direct-send."""
        ds_tr = Tracer(enabled=True)
        run_directsend(8, 8, scene, tracer=ds_tr)
        dfb_tr = Tracer(enabled=True)
        run_dfb(8, 8, scene, tracer=dfb_tr)
        ds_recvs = [s for s in ds_tr.spans if s.name == "recv piece"]
        dfb_recvs = [s for s in dfb_tr.spans if s.name == "recv piece"]
        assert len(ds_recvs) == len(dfb_recvs) > 0  # same schedule, same spans
        ds_wait = sum(s.t1 - s.t0 for s in ds_recvs)
        dfb_wait = sum(s.t1 - s.t0 for s in dfb_recvs)
        assert dfb_wait < ds_wait
        # The render stage still spans the whole chunked march.
        assert dfb_tr.stage_maxima()["render"] >= RENDER_S

    def test_stage_spans_cover_both_stages(self, scene):
        tracer = Tracer(enabled=True)
        run_dfb(8, 8, scene, tracer=tracer)
        stages = tracer.stage_maxima()
        assert stages["render"] > 0 and stages["composite"] > 0


class TestDFBFailover:
    def test_crash_recovers_full_canvas(self, scene):
        ranks, image = 16, 64
        cam = Camera.looking_at_volume((32,) * 3, width=image, height=image)
        dec = BlockDecomposition((32,) * 3, ranks)
        sched = schedule_from_geometry(dec, cam, ranks)

        def program(ctx):
            px = np.zeros((image, image, 4), np.float32)
            px[..., ctx.rank % 3] = 0.05
            px[..., 3] = 0.05
            partial = PartialImage((0, 0, image, image), px, float(ctx.rank))
            return (yield from dfb_compose_failover(ctx, partial, sched, RENDER_S))

        plan = FaultPlan(node_crashes=(NodeCrash(1e-5, 0),), detect_s=1e-4, seed=11)
        res = MPIWorld.for_cores(ranks).run(program, fault=plan)

        dead = {r for r, v in enumerate(res.values) if v is None}
        assert len(dead) == 4  # one node in VN mode = 4 ranks
        rects = [rect for v in res.values if v for rect, _ in v]
        check_exact_cover(rects, image, image)
        canvas = assemble_tiles(res.values, image, image)
        assert float(canvas[..., 3].min()) > 0.0
        assert res.fault is not None and res.fault.crashes == 1
        dead_tiles = {t for t in dead if t < sched.num_compositors}
        assert res.fault.recoveries >= len(dead_tiles) > 0

    def test_no_crash_plan_delegates_to_fast_path(self, scene):
        ranks, image = 16, 64
        cam = Camera.looking_at_volume((32,) * 3, width=image, height=image)
        dec = BlockDecomposition((32,) * 3, ranks)
        sched = schedule_from_geometry(dec, cam, ranks)

        def program(ctx):
            px = np.full((image, image, 4), 0.03, np.float32)
            partial = PartialImage((0, 0, image, image), px, float(ctx.rank))
            return (yield from dfb_compose_failover(ctx, partial, sched, RENDER_S))

        res = MPIWorld.for_cores(ranks).run(program, fault=FaultPlan(drop_prob=0.0, seed=1))
        rects = [rect for v in res.values if v for rect, _ in v]
        check_exact_cover(rects, image, image)
        assert res.fault is not None and res.fault.crashes == 0
