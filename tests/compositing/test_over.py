"""The over operator: algebraic properties that make sort-last work."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.render.image import blank_image, over

rgba_px = hnp.arrays(
    np.float64,
    (3, 3, 4),
    elements=st.floats(min_value=0.0, max_value=1.0),
).map(_premultiply := lambda a: np.concatenate([a[..., :3] * a[..., 3:4], a[..., 3:4]], axis=-1))


class TestOverOperator:
    @settings(max_examples=60, deadline=None)
    @given(rgba_px, rgba_px, rgba_px)
    def test_associative(self, a, b, c):
        """over(a, over(b, c)) == over(over(a, b), c) — the property that
        lets direct-send, binary swap, and serial compositing agree."""
        left = over(a, over(b, c))
        right = over(over(a, b), c)
        assert np.allclose(left, right, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(rgba_px)
    def test_transparent_is_identity(self, a):
        zero = np.zeros_like(a)
        assert np.allclose(over(a, zero), a)
        assert np.allclose(over(zero, a), a)

    @settings(max_examples=30, deadline=None)
    @given(rgba_px, rgba_px)
    def test_opaque_front_wins(self, a, b):
        a = a.copy()
        a[..., 3] = 1.0
        assert np.allclose(over(a, b), a)

    @settings(max_examples=30, deadline=None)
    @given(rgba_px, rgba_px)
    def test_alpha_stays_in_unit_interval(self, a, b):
        out = over(a, b)
        assert np.all(out[..., 3] <= 1.0 + 1e-12)
        assert np.all(out[..., 3] >= 0.0)

    @settings(max_examples=30, deadline=None)
    @given(rgba_px, rgba_px)
    def test_not_commutative_in_general(self, a, b):
        # Not a required property — just documents that order matters,
        # which is why compositing must sort by depth.
        _ = over(a, b), over(b, a)  # both defined; inequality not asserted

    def test_blank_image_shape(self):
        img = blank_image(10, 6)
        assert img.shape == (6, 10, 4)
        assert img.dtype == np.float32
        assert not img.any()
