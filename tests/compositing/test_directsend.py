"""Direct-send compositing: pixel-exact against the serial oracle."""

import numpy as np
import pytest

from repro.compositing.directsend import assemble_final_image, direct_send_compose
from repro.compositing.schedule import schedule_from_geometry
from repro.compositing.serial import compose_locally, serial_compose
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.raycast import render_block
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)
W, H = 48, 40
STEP = 0.7


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(42)
    data = rng.random(GRID).astype(np.float32)
    cam = Camera.looking_at_volume(GRID, width=W, height=H, azimuth_deg=25, elevation_deg=30)
    tf = TransferFunction.grayscale_ramp()
    return data, cam, tf


def make_partial(rank, dec, scene):
    data, cam, tf = scene
    b = dec.block(rank)
    rs, rc, gl = b.ghost_read(GRID, ghost=1)
    sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
    return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, step=STEP)


def reference(scene, nprocs):
    _data, cam, _tf = scene
    dec = BlockDecomposition(GRID, nprocs)
    partials = [make_partial(r, dec, scene) for r in range(nprocs)]
    return compose_locally(partials, cam.width, cam.height)


@pytest.mark.parametrize("nprocs,m", [(4, 4), (8, 8), (8, 3), (16, 16), (16, 4), (16, 1)])
class TestDirectSend:
    def test_matches_serial_oracle(self, nprocs, m, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, nprocs)
        sched = schedule_from_geometry(dec, cam, m)

        def program(ctx):
            partial = make_partial(ctx.rank, dec, scene)
            tile = yield from direct_send_compose(ctx, partial, sched)
            return (yield from assemble_final_image(ctx, tile, sched, root=0))

        res = MPIWorld.for_cores(nprocs).run(program)
        ref = reference(scene, nprocs)
        assert np.allclose(res[0], ref, atol=1e-5)
        assert all(v is None for v in res.values[1:])


class TestDirectSendDetails:
    def test_fewer_compositors_fewer_messages(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 16)
        world = MPIWorld.for_cores(16)
        message_counts = {}
        for m in (16, 4):
            sched = schedule_from_geometry(dec, cam, m)

            def program(ctx, sched=sched):
                partial = make_partial(ctx.rank, dec, scene)
                tile = yield from direct_send_compose(ctx, partial, sched)
                return (yield from assemble_final_image(ctx, tile, sched, root=0))

            res = world.run(program)
            message_counts[m] = res.messages
        assert message_counts[4] < message_counts[16]

    def test_offscreen_partial_sends_empty(self, scene):
        """A rank whose block rendered to nothing still satisfies the
        schedule with empty pieces."""
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8)
        sched = schedule_from_geometry(dec, cam, 4)

        def program(ctx):
            partial = make_partial(ctx.rank, dec, scene) if ctx.rank != 3 else None
            tile = yield from direct_send_compose(ctx, partial, sched)
            return (yield from assemble_final_image(ctx, tile, sched, root=0))

        res = MPIWorld.for_cores(8).run(program)
        assert res[0] is not None  # completed without deadlock

    def test_self_message_skips_piece_construction(self, scene):
        # Regression: the piece used to be cropped *before* the
        # dest == rank short-circuit, so every self-message paid for a
        # crop that was immediately thrown away.
        from repro.render.image import PartialImage

        crops = []

        class CountingPartial(PartialImage):
            def crop(self, rect):
                crops.append(rect)
                return super().crop(rect)

        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8)
        sched = schedule_from_geometry(dec, cam, 8)
        self_msgs = sum(
            1 for msg in sched.messages if sched.compositor_rank(msg.tile) == msg.src
        )
        assert self_msgs > 0  # the scene must actually exercise the path

        def program(ctx):
            p = make_partial(ctx.rank, dec, scene)
            partial = CountingPartial(p.rect, p.rgba, p.depth, p.samples)
            tile = yield from direct_send_compose(ctx, partial, sched)
            return (yield from assemble_final_image(ctx, tile, sched, root=0))

        res = MPIWorld.for_cores(8).run(program)
        assert np.allclose(res[0], reference(scene, 8), atol=1e-5)
        # direct_send_compose crops the sender's partial once per wire
        # message plus once per compositor's own contribution — and
        # never for the skipped self-message pieces.  (Downstream
        # composite_over crops plain PartialImages; not counted.)
        wire_msgs = len(sched.messages) - self_msgs
        assert len(crops) == wire_msgs + self_msgs

    def test_serial_compose_matches_local_oracle(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8)

        def program(ctx):
            partial = make_partial(ctx.rank, dec, scene)
            return (yield from serial_compose(ctx, partial, cam.width, cam.height, root=0))

        res = MPIWorld.for_cores(8).run(program)
        assert np.allclose(res[0], reference(scene, 8), atol=1e-6)
