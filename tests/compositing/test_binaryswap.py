"""Binary-swap baseline: matches serial and direct-send."""

import numpy as np
import pytest

from repro.compositing.binaryswap import binary_swap_compose, binary_swap_gather
from repro.compositing.serial import compose_locally
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.raycast import render_block
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)
W, H = 40, 40
STEP = 0.8


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(7)
    data = rng.random(GRID).astype(np.float32)
    cam = Camera.looking_at_volume(GRID, width=W, height=H, azimuth_deg=50, elevation_deg=10)
    tf = TransferFunction.grayscale_ramp()
    return data, cam, tf


def make_partial(rank, dec, scene):
    data, cam, tf = scene
    b = dec.block(rank)
    rs, rc, gl = b.ghost_read(GRID, ghost=1)
    sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
    return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, step=STEP)


@pytest.mark.parametrize("block_grid", [(2, 2, 2), (1, 2, 4), (2, 4, 2), (4, 2, 2), (2, 2, 4)])
class TestBinarySwap:
    def test_matches_serial(self, block_grid, scene):
        _data, cam, _tf = scene
        p = int(np.prod(block_grid))
        dec = BlockDecomposition(GRID, p, block_grid=block_grid)

        def program(ctx):
            partial = make_partial(ctx.rank, dec, scene)
            region, img = yield from binary_swap_compose(ctx, partial, dec, cam)
            return (yield from binary_swap_gather(ctx, region, img, W, H, root=0))

        res = MPIWorld.for_cores(p).run(program)
        ref = compose_locally([make_partial(r, dec, scene) for r in range(p)], W, H)
        assert np.allclose(res[0], ref, atol=1e-5)


class TestBinarySwapConstraints:
    def test_non_power_of_two_axis_rejected(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition((18, 16, 16), 6, block_grid=(3, 2, 1))

        def program(ctx):
            yield from binary_swap_compose(ctx, None, dec, cam)

        with pytest.raises(ConfigError, match="power of two"):
            MPIWorld.for_cores(6).run(program)

    def test_rank_block_mismatch_rejected(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8, block_grid=(2, 2, 2))

        def program(ctx):
            yield from binary_swap_compose(ctx, None, dec, cam)

        with pytest.raises(ConfigError, match="one block per rank"):
            MPIWorld.for_cores(4).run(program)

    def test_regions_partition_image(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8, block_grid=(2, 2, 2))

        def program(ctx):
            partial = make_partial(ctx.rank, dec, scene)
            region, _img = yield from binary_swap_compose(ctx, partial, dec, cam)
            return region

        res = MPIWorld.for_cores(8).run(program)
        count = np.zeros((H, W), dtype=int)
        for x0, y0, w, h in res.values:
            count[y0 : y0 + h, x0 : x0 + w] += 1
        assert np.all(count == 1)

    def test_message_sizes_halve_each_round(self, scene):
        """Binary swap's signature: log2(p) rounds of shrinking halves."""
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8, block_grid=(2, 2, 2))

        def program(ctx):
            partial = make_partial(ctx.rank, dec, scene)
            region, img = yield from binary_swap_compose(ctx, partial, dec, cam)
            return region

        world = MPIWorld.for_cores(8)
        res = world.run(program)
        # 3 rounds x 8 ranks swap messages + gather-free return.
        assert res.messages == 3 * 8
