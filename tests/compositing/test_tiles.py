"""Tile decompositions of the final image."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compositing.tiles import TileDecomposition, factor2
from repro.utils.errors import ConfigError


class TestFactor2:
    def test_square_for_square_aspect(self):
        assert factor2(16, 1.0) == (4, 4)

    def test_respects_aspect(self):
        gx, gy = factor2(8, 2.0)
        assert gx == 4 and gy == 2

    @given(st.integers(min_value=1, max_value=500))
    def test_product(self, m):
        gx, gy = factor2(m)
        assert gx * gy == m


class TestTileDecomposition:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=8, max_value=200),
        st.integers(min_value=8, max_value=200),
        st.integers(min_value=1, max_value=64),
    )
    def test_tiles_partition_image(self, w, h, m):
        try:
            tiles = TileDecomposition(w, h, m)
        except ConfigError:
            return
        count = np.zeros((h, w), dtype=np.int32)
        for x0, y0, tw, th in tiles.tiles():
            count[y0 : y0 + th, x0 : x0 + tw] += 1
        assert np.all(count == 1)

    def test_strips_mode(self):
        tiles = TileDecomposition(64, 64, 8, strips=True)
        assert tiles.grid == (1, 8)
        assert all(t[2] == 64 for t in tiles.tiles())  # full-width strips

    def test_overlapping_tiles_found(self):
        tiles = TileDecomposition(100, 100, 4)  # 2x2 grid of 50x50
        assert tiles.tiles_overlapping((40, 40, 20, 20)) == [0, 1, 2, 3]
        assert tiles.tiles_overlapping((0, 0, 10, 10)) == [0]
        assert tiles.tiles_overlapping((60, 10, 10, 10)) == [1]

    def test_empty_rect_overlaps_nothing(self):
        tiles = TileDecomposition(100, 100, 4)
        assert tiles.tiles_overlapping((10, 10, 0, 5)) == []

    def test_overlap_area(self):
        tiles = TileDecomposition(100, 100, 4)
        assert tiles.overlap_area((40, 40, 20, 20), 0) == 100
        assert tiles.overlap_area((0, 0, 10, 10), 3) == 0

    def test_overlap_areas_sum_to_rect(self):
        tiles = TileDecomposition(120, 80, 12)
        rect = (13, 7, 55, 41)
        total = sum(tiles.overlap_area(rect, t) for t in tiles.tiles_overlapping(rect))
        assert total == 55 * 41

    def test_too_many_tiles_rejected(self):
        with pytest.raises(ConfigError):
            TileDecomposition(4, 4, 100)

    def test_bad_index_rejected(self):
        with pytest.raises(ConfigError):
            TileDecomposition(10, 10, 2).tile(5)
