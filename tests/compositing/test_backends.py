"""The backend registry: lookup, validation, and the exactness matrix.

Every registered backend composites the same rendered partials through
:meth:`CompositingBackend.compose` and must reproduce the local serial
oracle — including odd image sizes, m < n compositor limiting, and
scanline-strip tile decompositions where the backend uses tiles at all.
"""

import numpy as np
import pytest

from repro.compositing.backends import (
    ComposeRequest,
    CompositingBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.compositing.schedule import schedule_from_geometry
from repro.compositing.serial import compose_locally
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.raycast import render_block
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.sim.parallel import ParallelConfig
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)
STEP = 0.7
ALL_BACKENDS = ("directsend", "dfb", "puzzlepiece", "binaryswap", "radixk", "serial")
#: Backends that composite through the tile schedule (binary swap and
#: radix-k split image rows by rank instead, so strips mean nothing).
SCHEDULED = ("directsend", "dfb", "puzzlepiece", "serial")


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(42).random(GRID).astype(np.float32)


def make_scene(width, height):
    cam = Camera.looking_at_volume(
        GRID, width=width, height=height, azimuth_deg=25, elevation_deg=30
    )
    return cam, TransferFunction.grayscale_ramp()


def make_partial(rank, dec, data, cam, tf):
    b = dec.block(rank)
    rs, rc, gl = b.ghost_read(GRID, ghost=1)
    sub = data[rs[0]: rs[0] + rc[0], rs[1]: rs[1] + rc[1], rs[2]: rs[2] + rc[2]]
    return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, step=STEP)


def run_backend(name, nprocs, m, data, cam, tf, strips=False, error_budget=0.0):
    dec = BlockDecomposition(GRID, nprocs)
    sched = schedule_from_geometry(dec, cam, m, strips=strips)
    backend = get_backend(name)
    backend.validate(nprocs, decomposition=dec, error_budget=error_budget)

    def program(ctx):
        partial = make_partial(ctx.rank, dec, data, cam, tf)
        req = ComposeRequest(
            partial=partial, schedule=sched, decomposition=dec, camera=cam,
            render_seconds=1e-4, error_budget=error_budget,
        )
        return (yield from backend.compose(ctx, req))

    res = MPIWorld.for_cores(nprocs).run(program)
    image, stats = backend.finalize(res.values, cam)
    return image, stats, res


class TestRegistry:
    def test_all_six_registered(self):
        assert set(ALL_BACKENDS) <= set(backend_names())

    def test_get_backend_returns_named_instance(self):
        for name in ALL_BACKENDS:
            assert get_backend(name).name == name

    def test_unknown_name_lists_what_exists(self):
        with pytest.raises(ConfigError, match="binaryswap.*directsend"):
            get_backend("splatting")

    def test_register_backend_last_wins(self):
        class Custom(CompositingBackend):
            name = "directsend"

        original = get_backend("directsend")
        try:
            custom = register_backend(Custom())
            assert get_backend("directsend") is custom
        finally:
            register_backend(original)
        assert get_backend("directsend") is original


class TestValidation:
    def test_binaryswap_rejects_non_pow2_grid(self):
        dec = BlockDecomposition(GRID, 12)  # 3 on one axis
        with pytest.raises(ConfigError, match="power-of-two"):
            get_backend("binaryswap").validate(12, decomposition=dec)

    def test_radixk_rejects_unfactorable_extent(self):
        dec = BlockDecomposition(GRID, 7)  # prime > k on one axis
        with pytest.raises(ConfigError, match="factor"):
            get_backend("radixk").validate(7, decomposition=dec)

    def test_puzzlepiece_rejects_parallel_engine(self):
        dec = BlockDecomposition(GRID, 8)
        with pytest.raises(ConfigError, match="monolithic"):
            get_backend("puzzlepiece").validate(
                8, decomposition=dec, parallel=ParallelConfig(workers=2)
            )

    def test_exact_backends_reject_error_budget(self):
        dec = BlockDecomposition(GRID, 8)
        for name in ("directsend", "dfb", "binaryswap", "radixk", "serial"):
            with pytest.raises(ConfigError, match="error"):
                get_backend(name).validate(8, decomposition=dec, error_budget=0.1)

    def test_non_failover_backends_reject_crash_plans(self):
        dec = BlockDecomposition(GRID, 8)
        for name in ("puzzlepiece", "binaryswap", "radixk", "serial"):
            with pytest.raises(ConfigError, match="failover"):
                get_backend(name).validate(8, decomposition=dec, failover=True)

    def test_failover_backends_accept_crash_plans(self):
        dec = BlockDecomposition(GRID, 8)
        get_backend("directsend").validate(8, decomposition=dec, failover=True)
        get_backend("dfb").validate(8, decomposition=dec, failover=True)

    def test_one_block_per_rank_enforced(self):
        dec = BlockDecomposition(GRID, 8)
        with pytest.raises(ConfigError, match="one block per rank"):
            get_backend("binaryswap").validate(16, decomposition=dec)


class TestExactnessMatrix:
    """Every backend vs the local oracle, across awkward geometries."""

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    @pytest.mark.parametrize("nprocs,width,height", [(8, 48, 40), (8, 47, 33), (16, 45, 40)])
    def test_matches_oracle(self, name, nprocs, width, height, data):
        cam, tf = make_scene(width, height)
        dec = BlockDecomposition(GRID, nprocs)
        ref = compose_locally(
            [make_partial(r, dec, data, cam, tf) for r in range(nprocs)],
            cam.width, cam.height,
        )
        image, _stats, _res = run_backend(name, nprocs, nprocs, data, cam, tf)
        assert np.allclose(image, ref, atol=1e-5)

    @pytest.mark.parametrize("name", SCHEDULED)
    @pytest.mark.parametrize("m", (1, 3, 8))
    def test_compositor_limiting(self, name, m, data):
        cam, tf = make_scene(48, 40)
        dec = BlockDecomposition(GRID, 8)
        ref = compose_locally(
            [make_partial(r, dec, data, cam, tf) for r in range(8)],
            cam.width, cam.height,
        )
        image, _stats, _res = run_backend(name, 8, m, data, cam, tf)
        assert np.allclose(image, ref, atol=1e-5)

    @pytest.mark.parametrize("name", SCHEDULED)
    def test_strip_tiles(self, name, data):
        cam, tf = make_scene(47, 40)
        dec = BlockDecomposition(GRID, 8)
        ref = compose_locally(
            [make_partial(r, dec, data, cam, tf) for r in range(8)],
            cam.width, cam.height,
        )
        image, _stats, _res = run_backend(name, 8, 4, data, cam, tf, strips=True)
        assert np.allclose(image, ref, atol=1e-5)

    def test_dfb_bitwise_matches_directsend(self, data):
        cam, tf = make_scene(48, 40)
        ds, _s, _r = run_backend("directsend", 8, 8, data, cam, tf)
        dfb, _s, _r = run_backend("dfb", 8, 8, data, cam, tf)
        assert np.array_equal(ds, dfb)
