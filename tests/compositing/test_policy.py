"""Compositor-count policies."""

import pytest

from repro.compositing.policy import (
    IDENTITY_POLICY,
    PAPER_POLICY,
    CompositorPolicy,
    fixed_policy,
    sqrt_policy,
)
from repro.utils.errors import ConfigError


class TestPaperPolicy:
    def test_below_1k_identity(self):
        for n in (64, 512, 1023):
            assert PAPER_POLICY.compositors_for(n) == n

    def test_1k_to_4k_clamps_at_1k(self):
        """"We used 1K compositors when the number of renderers is
        between 1K and 4K...\""""
        for n in (1024, 2048, 4095):
            assert PAPER_POLICY.compositors_for(n) == 1024

    def test_4k_and_beyond_clamps_at_2k(self):
        """...and then 2K compositors beyond that." """
        for n in (4096, 8192, 16384, 32768):
            assert PAPER_POLICY.compositors_for(n) == 2048


class TestOtherPolicies:
    def test_identity(self):
        assert IDENTITY_POLICY.compositors_for(7777) == 7777

    def test_fixed_clamped_to_n(self):
        p = fixed_policy(100)
        assert p.compositors_for(50) == 50
        assert p.compositors_for(500) == 100

    def test_sqrt_policy_monotone(self):
        p = sqrt_policy(8.0)
        values = [p.compositors_for(n) for n in (64, 256, 1024, 4096)]
        assert values == sorted(values)
        assert all(1 <= v for v in values)

    def test_invalid_policies(self):
        with pytest.raises(ConfigError):
            fixed_policy(0)
        with pytest.raises(ConfigError):
            sqrt_policy(-1)
        bad = CompositorPolicy("bad", lambda n: n + 1)
        with pytest.raises(ConfigError, match="produced"):
            bad.compositors_for(4)
        with pytest.raises(ConfigError):
            PAPER_POLICY.compositors_for(0)
