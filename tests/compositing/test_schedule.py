"""Message schedules: counts, sizes, and the O(m * n^(1/3)) scaling."""

import numpy as np
import pytest

from repro.compositing.schedule import (
    BYTES_PER_PIXEL,
    CompositeSchedule,
    build_schedule,
    schedule_from_geometry,
)
from repro.compositing.tiles import TileDecomposition
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.utils.errors import ConfigError


class TestBuildSchedule:
    def test_messages_cover_footprints(self):
        tiles = TileDecomposition(100, 100, 4)
        sched = build_schedule([(40, 40, 20, 20), None, (0, 0, 10, 10), None], tiles, 4)
        # Renderer 0 straddles all four tiles; renderer 2 hits one.
        assert len(sched.outgoing(0)) == 4
        assert sched.outgoing(1) == []
        assert len(sched.outgoing(2)) == 1

    def test_pixel_conservation(self):
        """Across tiles, each footprint's pixels are sent exactly once."""
        tiles = TileDecomposition(96, 96, 9)
        rects = [(5, 5, 30, 40), (50, 20, 46, 76), (0, 0, 96, 96)]
        footprints = rects + [None] * 6  # 9 renderers, 3 with pixels
        sched = build_schedule(footprints, tiles, 9)
        for src, rect in enumerate(rects):
            sent = sum(m.pixels for m in sched.outgoing(src))
            assert sent == rect[2] * rect[3]

    def test_message_nbytes(self):
        tiles = TileDecomposition(10, 10, 1)
        sched = build_schedule([(0, 0, 10, 10)], tiles, 1)
        msg = sched.messages[0]
        assert msg.nbytes == 100 * BYTES_PER_PIXEL + 64

    def test_m_greater_than_n_rejected(self):
        tiles = TileDecomposition(10, 10, 4)
        with pytest.raises(ConfigError, match="cannot exceed"):
            CompositeSchedule(2, 4, tiles, [])

    def test_compositor_rank_is_tile_index(self):
        tiles = TileDecomposition(10, 10, 2)
        sched = build_schedule([(0, 0, 10, 10), (0, 0, 5, 5)], tiles, 2)
        assert sched.compositor_rank(0) == 0
        assert sched.compositor_rank(1) == 1
        with pytest.raises(ConfigError):
            sched.compositor_rank(2)


class TestGeometrySchedule:
    def test_every_onscreen_block_sends(self):
        grid = (16, 16, 16)
        cam = Camera.looking_at_volume(grid, width=64, height=64)
        dec = BlockDecomposition(grid, 8)
        sched = schedule_from_geometry(dec, cam, 4)
        senders = {m.src for m in sched.messages}
        assert senders == set(range(8))

    def test_total_bytes_scale_with_image(self):
        grid = (16, 16, 16)
        dec = BlockDecomposition(grid, 8)
        small = schedule_from_geometry(dec, Camera.looking_at_volume(grid, 32, 32), 4)
        large = schedule_from_geometry(dec, Camera.looking_at_volume(grid, 128, 128), 4)
        assert large.total_bytes > 4 * small.total_bytes

    def test_message_count_sublinear_in_m(self):
        """Fewer compositors -> fewer messages (the paper's lever)."""
        grid = (32, 32, 32)
        cam = Camera.looking_at_volume(grid, width=128, height=128)
        dec = BlockDecomposition(grid, 64)
        many = schedule_from_geometry(dec, cam, 64)
        few = schedule_from_geometry(dec, cam, 8)
        assert few.total_messages < many.total_messages
        # But mean message size grows.
        assert few.mean_message_bytes > many.mean_message_bytes

    def test_scaling_near_m_times_cuberoot_n(self):
        """Total messages ~ O(m * n^(1/3)) for square-ish tiles."""
        grid = (64, 64, 64)
        cam = Camera.looking_at_volume(grid, width=256, height=256)
        counts = {}
        for n in (64, 512):
            dec = BlockDecomposition(grid, n)
            counts[n] = schedule_from_geometry(dec, cam, n).total_messages
        # n grows 8x -> m*n^(1/3) grows 16x; allow geometry slack.
        ratio = counts[512] / counts[64]
        assert 8 < ratio < 40
