"""Approximate puzzlepiece: the error bound holds, the savings are real.

The contract under test: for any ``error_budget`` the frame differs
from exact direct-send by at most ``budget`` per pixel per channel (up
to float association noise), strictly fewer messages travel when the
budget is positive, and ``budget = 0`` is bitwise direct-send.  Plus
the drain protocol's :func:`gi_barrier` — the BG/P global-interrupt
line — which must cost zero torus messages.
"""

import numpy as np
import pytest

from repro.compositing.backends import ComposeRequest, get_backend
from repro.compositing.puzzlepiece import piece_max_alpha, puzzle_thresholds
from repro.compositing.schedule import schedule_from_geometry
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.image import PartialImage
from repro.render.raycast import render_block
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.vmpi import MPIWorld
from repro.utils.errors import CommunicationError
from repro.vmpi.collectives import GI_LATENCY_S
from repro.vmpi.comm import MessageBoard
from repro.vmpi.shardworld import ShardMessageBoard

GRID = (16, 16, 16)
W, H = 48, 40
STEP = 0.7
#: Depth-tie association noise: dropping messages perturbs arrival
#: order among equal-depth pieces, shifting sums by an ulp or two.
TIE_EPS = 1e-6


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(42)
    data = rng.random(GRID).astype(np.float32)
    cam = Camera.looking_at_volume(GRID, width=W, height=H, azimuth_deg=25, elevation_deg=30)
    return data, cam, TransferFunction.grayscale_ramp()


def make_partial(rank, dec, scene):
    data, cam, tf = scene
    b = dec.block(rank)
    rs, rc, gl = b.ghost_read(GRID, ghost=1)
    sub = data[rs[0]: rs[0] + rc[0], rs[1]: rs[1] + rc[1], rs[2]: rs[2] + rc[2]]
    return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, step=STEP)


def run(name, nprocs, m, scene, error_budget=0.0):
    _data, cam, _tf = scene
    dec = BlockDecomposition(GRID, nprocs)
    sched = schedule_from_geometry(dec, cam, m)
    backend = get_backend(name)

    def program(ctx):
        partial = make_partial(ctx.rank, dec, scene)
        req = ComposeRequest(
            partial=partial, schedule=sched, decomposition=dec, camera=cam,
            render_seconds=1e-4, error_budget=error_budget,
        )
        return (yield from backend.compose(ctx, req))

    res = MPIWorld.for_cores(nprocs).run(program)
    image, stats = backend.finalize(res.values, cam)
    return image, stats, res


class TestThresholds:
    def test_budget_split_over_scheduled_pieces(self, scene):
        _data, cam, _tf = scene
        sched = schedule_from_geometry(BlockDecomposition(GRID, 8), cam, 4)
        th = puzzle_thresholds(sched, 0.08)
        for t in range(sched.num_compositors):
            e_t = max(1, len(sched.incoming(t)))
            assert th[t] == pytest.approx(0.08 / (2 * e_t))

    def test_zero_budget_zero_thresholds(self, scene):
        _data, cam, _tf = scene
        sched = schedule_from_geometry(BlockDecomposition(GRID, 8), cam, 4)
        assert all(v == 0.0 for v in puzzle_thresholds(sched, 0.0).values())

    def test_piece_max_alpha(self):
        rgba = np.zeros((2, 3, 4), np.float32)
        rgba[1, 2, 3] = 0.25
        assert piece_max_alpha(PartialImage((0, 0, 3, 2), rgba, 1.0)) == 0.25
        empty = PartialImage((0, 0, 0, 0), np.zeros((0, 0, 4), np.float32), 1.0)
        assert piece_max_alpha(empty) == 0.0


class TestErrorBudget:
    @pytest.mark.parametrize("nprocs,m", [(8, 8), (16, 8)])
    @pytest.mark.parametrize("budget", (0.01, 0.05, 0.2))
    def test_error_never_exceeds_budget(self, nprocs, m, budget, scene):
        exact, _s, _r = run("directsend", nprocs, m, scene)
        approx, stats, _r = run("puzzlepiece", nprocs, m, scene, error_budget=budget)
        maxdiff = float(np.abs(exact - approx).max())
        assert maxdiff <= budget + TIE_EPS
        # The reported bound is itself within budget, and honest.
        assert stats["error_bound"] <= budget
        assert maxdiff <= stats["error_bound"] + TIE_EPS

    def test_positive_budget_saves_messages_and_bytes(self, scene):
        _e, _s, ds = run("directsend", 16, 8, scene)
        _a, stats, pp = run("puzzlepiece", 16, 8, scene, error_budget=0.05)
        assert pp.messages < ds.messages
        assert pp.bytes_sent < ds.bytes_sent
        assert stats["pieces_dropped"] > 0
        assert stats["bytes_saved"] >= ds.bytes_sent - pp.bytes_sent

    def test_larger_budget_drops_at_least_as_much(self, scene):
        _a, small, _r = run("puzzlepiece", 16, 8, scene, error_budget=0.01)
        _b, large, _r = run("puzzlepiece", 16, 8, scene, error_budget=0.2)
        assert large["pieces_dropped"] >= small["pieces_dropped"]

    @pytest.mark.parametrize("nprocs,m", [(8, 8), (8, 3), (16, 8)])
    def test_zero_budget_is_bitwise_directsend(self, nprocs, m, scene):
        exact, _s, ds = run("directsend", nprocs, m, scene)
        approx, stats, pp = run("puzzlepiece", nprocs, m, scene, error_budget=0.0)
        assert np.array_equal(exact, approx)
        assert pp.messages == ds.messages  # zero budget drops nothing
        assert stats["pieces_dropped"] == 0 and stats["error_bound"] == 0.0


class TestGIBarrier:
    def test_zero_torus_messages_fixed_latency(self):
        def program(ctx):
            yield from ctx.gi_barrier()
            return ctx.now

        res = MPIWorld.for_cores(8).run(program)
        assert res.messages == 0
        assert res.bytes_sent == 0
        # Everyone leaves together, one interrupt latency after arrival.
        assert all(v == pytest.approx(GI_LATENCY_S) for v in res.values)

    def test_waits_for_the_last_arrival(self):
        def program(ctx):
            yield from ctx.compute(ctx.rank * 1e-3)
            yield from ctx.gi_barrier()
            return ctx.now

        res = MPIWorld.for_cores(4).run(program)
        expected = 3e-3 + GI_LATENCY_S
        assert all(v == pytest.approx(expected) for v in res.values)

    def test_reusable_across_phases(self):
        def program(ctx):
            yield from ctx.gi_barrier()
            yield from ctx.gi_barrier()
            return ctx.now

        res = MPIWorld.for_cores(4).run(program)
        assert all(v == pytest.approx(2 * GI_LATENCY_S) for v in res.values)

    def test_gi_capability_flags(self):
        # The monolithic board hosts the rendezvous; one shard of the
        # sharded engine cannot, so puzzlepiece refuses ParallelConfig.
        assert MessageBoard.gi_capable is True
        assert ShardMessageBoard.gi_capable is False

    def test_incapable_board_rejected(self):
        class NoGI:
            gi_capable = False

        from repro.vmpi.collectives import gi_barrier

        class FakeCtx:
            board = NoGI()
            size = 2

        with pytest.raises(CommunicationError, match="global-interrupt"):
            next(gi_barrier(FakeCtx()))
