"""Radix-k compositing: generalizes binary swap, matches the oracle."""

import numpy as np
import pytest

from repro.compositing.radixk import default_radices, radix_k_compose, radix_k_gather
from repro.compositing.serial import compose_locally
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.raycast import render_block
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)
W, H = 40, 40
STEP = 0.8


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(17)
    data = rng.random(GRID).astype(np.float32)
    # Eye strictly outside the volume's span on every axis, so slab
    # ordering is unambiguous (the algorithm's documented requirement).
    cam = Camera.looking_at_volume(GRID, width=W, height=H, azimuth_deg=40, elevation_deg=18)
    tf = TransferFunction.grayscale_ramp()
    return data, cam, tf


def make_partial(rank, dec, scene):
    data, cam, tf = scene
    b = dec.block(rank)
    rs, rc, gl = b.ghost_read(GRID, ghost=1)
    sub = data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]]
    return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, step=STEP)


def run_radix(scene, block_grid, radices=None, k=4):
    _data, cam, _tf = scene
    p = int(np.prod(block_grid))
    dec = BlockDecomposition(GRID, p, block_grid=block_grid)

    def program(ctx):
        partial = make_partial(ctx.rank, dec, scene)
        region, img = yield from radix_k_compose(ctx, partial, dec, cam, radices, k)
        full = yield from radix_k_gather(ctx, region, img, W, H, root=0)
        return full, region

    res = MPIWorld.for_cores(p).run(program)
    ref = compose_locally([make_partial(r, dec, scene) for r in range(p)], W, H)
    return res, ref


class TestDefaultRadices:
    def test_factors_within_k(self):
        assert default_radices(8, 2) == [2, 2, 2]
        assert default_radices(8, 4) == [4, 2]
        assert default_radices(12, 4) == [4, 3]
        assert default_radices(1, 4) == [1]

    def test_prime_larger_than_k_rejected(self):
        with pytest.raises(ConfigError):
            default_radices(7, 4)


class TestRadixKCorrectness:
    @pytest.mark.parametrize(
        "block_grid,k",
        [((2, 2, 2), 2), ((2, 2, 2), 4), ((4, 2, 2), 4), ((2, 4, 2), 4), ((1, 4, 4), 4), ((4, 4, 1), 2)],
    )
    def test_matches_serial(self, scene, block_grid, k):
        res, ref = run_radix(scene, block_grid, k=k)
        assert np.allclose(res[0][0], ref, atol=1e-5)

    def test_explicit_radices(self, scene):
        res, ref = run_radix(scene, (4, 2, 2), radices={"z": [2, 2], "y": [2], "x": [2]})
        assert np.allclose(res[0][0], ref, atol=1e-5)

    def test_regions_partition_image(self, scene):
        res, _ref = run_radix(scene, (2, 2, 2), k=2)
        count = np.zeros((H, W), dtype=int)
        for _full, (x0, y0, w, h) in res.values:
            count[y0 : y0 + h, x0 : x0 + w] += 1
        assert np.all(count == 1)

    def test_k2_message_count_equals_binary_swap(self, scene):
        """k=2 radix-k IS binary swap: p * log2(p) swap messages."""
        res, _ref = run_radix(scene, (2, 2, 2), k=2)
        # 3 rounds x 8 ranks x 1 partner message, plus the gather tree.
        assert res.messages >= 24

    def test_larger_k_fewer_rounds_more_messages_per_round(self, scene):
        res_k2, _ = run_radix(scene, (1, 4, 4), k=2)
        res_k4, _ = run_radix(scene, (1, 4, 4), k=4)
        # k=4: 2 rounds of 3 partners each = 6 sends/rank;
        # k=2: 4 rounds of 1 partner = 4 sends/rank.
        assert res_k4.messages > res_k2.messages


class TestRadixKValidation:
    def test_wrong_rank_count(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8, block_grid=(2, 2, 2))

        def program(ctx):
            yield from radix_k_compose(ctx, None, dec, cam)

        with pytest.raises(ConfigError, match="one block per rank"):
            MPIWorld.for_cores(4).run(program)

    def test_mismatched_radices(self, scene):
        _data, cam, _tf = scene
        dec = BlockDecomposition(GRID, 8, block_grid=(2, 2, 2))

        def program(ctx):
            yield from radix_k_compose(ctx, None, dec, cam, radices={"z": [4]})

        with pytest.raises(ConfigError, match="multiply to"):
            MPIWorld.for_cores(8).run(program)


class TestRadixKProperties:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=6, deadline=None)
    @given(
        st.sampled_from([(2, 2, 2), (1, 2, 4), (4, 2, 1)]),
        st.integers(min_value=2, max_value=4),
        st.floats(min_value=-70, max_value=70),
    )
    def test_random_grids_and_views_match_serial(self, block_grid, k, azimuth):
        """Any factorization, any outside view: radix-k equals serial."""
        import numpy as np

        rng = np.random.default_rng(int(abs(azimuth) * 100) + k)
        data = rng.random(GRID).astype(np.float32)
        # Keep the eye outside the volume span on every axis.
        az = azimuth if abs(np.sin(np.radians(azimuth))) > 0.25 else azimuth + 30
        cam = Camera.looking_at_volume(GRID, width=24, height=24,
                                       azimuth_deg=az, elevation_deg=22)
        tf = TransferFunction.grayscale_ramp()
        p = int(np.prod(block_grid))
        dec = BlockDecomposition(GRID, p, block_grid=block_grid)

        def make(rank):
            b = dec.block(rank)
            rs, rc, gl = b.ghost_read(GRID, ghost=1)
            sub = data[rs[0]:rs[0]+rc[0], rs[1]:rs[1]+rc[1], rs[2]:rs[2]+rc[2]]
            return render_block(cam, VolumeBlock(sub, GRID, b.start, b.count, gl), tf, STEP)

        def program(ctx):
            region, img = yield from radix_k_compose(ctx, make(ctx.rank), dec, cam, None, k)
            return (yield from radix_k_gather(ctx, region, img, 24, 24, root=0))

        res = MPIWorld.for_cores(p).run(program)
        ref = compose_locally([make(r) for r in range(p)], 24, 24)
        assert np.allclose(res[0], ref, atol=1e-5)
