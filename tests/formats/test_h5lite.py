"""h5lite format: round-trips, metadata accesses, virtual files."""

import numpy as np
import pytest

from repro.formats.h5lite import (
    META_BLOCK_BYTES,
    NUM_META_BLOCKS,
    H5LiteFile,
    H5LiteWriter,
)
from repro.storage.store import MemoryStore
from repro.utils.errors import FormatError


class TestRoundTrip:
    def test_multiple_datasets(self, rng):
        w = H5LiteWriter()
        data = {n: rng.random((4, 5, 6)).astype(np.float32) for n in ("a", "b", "c")}
        for n, d in data.items():
            w.create_dataset(n, d)
        f = w.write()
        for n, d in data.items():
            assert np.array_equal(f.read_dataset(n), d)

    def test_subarray(self, rng):
        w = H5LiteWriter()
        d = rng.random((8, 8, 8)).astype(np.float32)
        w.create_dataset("v", d)
        f = w.write()
        assert np.array_equal(f.read_subarray("v", (2, 0, 4), (3, 8, 2)), d[2:5, :, 4:6])

    def test_data_is_contiguous(self, rng):
        """The paper's Sec. V-B observation: one solid extent per dataset."""
        w = H5LiteWriter()
        d = rng.random((4, 4, 4)).astype(np.float32)
        w.create_dataset("v", d)
        f = w.write()
        intervals = f.datasets["v"].layout.covering_intervals()
        assert len(intervals) == 1
        assert intervals[0][1] == d.nbytes

    def test_duplicate_rejected(self):
        w = H5LiteWriter()
        w.create_dataset("v", np.zeros((2, 2), np.float32))
        with pytest.raises(FormatError, match="already defined"):
            w.create_dataset("v", np.zeros((2, 2), np.float32))

    def test_unknown_dataset_rejected(self, rng):
        w = H5LiteWriter()
        w.create_dataset("v", rng.random((2, 2)).astype(np.float32))
        with pytest.raises(FormatError, match="no dataset"):
            w.write().dataset("nope")

    def test_bad_magic_rejected(self):
        with pytest.raises(FormatError, match="magic"):
            H5LiteFile(MemoryStore(b"CDF\x01" + b"\x00" * 100))


class TestMetadataAccesses:
    def test_eleven_plus_two_small_reads(self, rng):
        """Matches the paper: 11 tiny per-dataset metadata accesses
        (plus superblock and index entry), all under 600 bytes."""
        w = H5LiteWriter()
        w.create_dataset("v", rng.random((4, 4)).astype(np.float32))
        f = w.write()
        reads = f.metadata_accesses("v")
        assert len(reads) == NUM_META_BLOCKS + 2
        assert all(length <= 600 for _off, length in reads)

    def test_meta_block_size_under_paper_bound(self):
        assert META_BLOCK_BYTES <= 600


class TestVirtual:
    def test_header_only_layout_matches_real(self, rng):
        shapes = {"a": (6, 5, 4), "b": (3, 3, 3)}
        wv = H5LiteWriter()
        wr = H5LiteWriter()
        for n, s in shapes.items():
            wv.create_virtual_dataset(n, s, "<f4")
            wr.create_dataset(n, rng.random(s).astype(np.float32))
        fv = wv.write_header_only()
        fr = wr.write()
        for n in shapes:
            assert fv.datasets[n].data_offset == fr.datasets[n].data_offset
            assert fv.datasets[n].shape == fr.datasets[n].shape
        assert fv.store.size() == fr.store.size()

    def test_virtual_paper_scale(self):
        w = H5LiteWriter()
        for n in ("pressure", "density", "vx", "vy", "vz"):
            w.create_virtual_dataset(n, (1120, 1120, 1120), "<f4")
        f = w.write_header_only()
        assert f.store.size() > 28e9
        assert f.datasets["vz"].nbytes == 1120**3 * 4

    def test_virtual_write_without_header_only_rejected(self):
        w = H5LiteWriter()
        w.create_virtual_dataset("v", (4, 4), "<f4")
        with pytest.raises(FormatError, match="virtual"):
            w.write()
