"""Layout algebra: subarray runs, record interleaving, stats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats.layout import (
    ContiguousLayout,
    RecordLayout,
    subarray_run_stats,
    subarray_runs,
)
from repro.utils.errors import FormatError


class TestContiguousLayout:
    def test_maps_with_offset(self):
        lay = ContiguousLayout(begin=100, nbytes=50)
        assert list(lay.file_ranges(10, 20)) == [(110, 20)]

    def test_covering_interval(self):
        assert ContiguousLayout(7, 13).covering_intervals() == [(7, 13)]

    def test_out_of_range_rejected(self):
        with pytest.raises(FormatError):
            list(ContiguousLayout(0, 10).file_ranges(5, 10))


class TestRecordLayout:
    def test_slab_addressing(self):
        lay = RecordLayout(begin=100, slab_bytes=10, stride_bytes=50, num_records=3)
        # Byte 15 of the variable = record 1, byte 5.
        assert list(lay.file_ranges(15, 3)) == [(155, 3)]

    def test_range_spanning_records(self):
        lay = RecordLayout(begin=0, slab_bytes=10, stride_bytes=30, num_records=3)
        assert list(lay.file_ranges(5, 15)) == [(5, 5), (30, 10)]

    def test_covering_intervals_one_per_record(self):
        lay = RecordLayout(begin=4, slab_bytes=8, stride_bytes=20, num_records=4)
        assert lay.covering_intervals() == [(4, 8), (24, 8), (44, 8), (64, 8)]

    def test_nbytes_excludes_padding(self):
        lay = RecordLayout(begin=0, slab_bytes=10, stride_bytes=64, num_records=5)
        assert lay.nbytes == 50

    def test_invalid_stride_rejected(self):
        with pytest.raises(FormatError):
            RecordLayout(0, 100, 50, 2)


def subarray_case():
    """Hypothesis strategy: (shape, start, count) triples in 1-3 dims."""
    def build(dims):
        shape = tuple(d[0] for d in dims)
        start = tuple(d[1] for d in dims)
        count = tuple(d[2] for d in dims)
        return shape, start, count

    dim = st.integers(min_value=1, max_value=8).flatmap(
        lambda n: st.integers(min_value=0, max_value=n - 1).flatmap(
            lambda s: st.integers(min_value=0, max_value=n - s).map(lambda c: (n, s, c))
        )
    )
    return st.lists(dim, min_size=1, max_size=3).map(build)


class TestSubarrayRuns:
    def test_full_array_is_one_run(self):
        runs = list(subarray_runs((4, 4, 4), (0, 0, 0), (4, 4, 4), 4))
        assert runs == [(0, 256)]

    def test_inner_block_runs(self):
        runs = list(subarray_runs((4, 4, 4), (1, 1, 1), (2, 2, 2), 1))
        assert len(runs) == 4  # 2 z-planes x 2 y-rows
        assert all(length == 2 for _off, length in runs)
        assert runs[0] == (1 * 16 + 1 * 4 + 1, 2)

    def test_fully_covered_suffix_merges(self):
        # Trailing dims fully covered -> longer runs.
        runs = list(subarray_runs((4, 4, 4), (1, 0, 0), (2, 4, 4), 4))
        assert runs == [(64, 128)]  # offset 16 elements * 4B, one merged run

    def test_empty_count_yields_nothing(self):
        assert list(subarray_runs((4, 4), (0, 0), (0, 4), 1)) == []

    def test_bad_subarray_rejected(self):
        with pytest.raises(FormatError):
            list(subarray_runs((4,), (3,), (2,), 1))
        with pytest.raises(FormatError):
            list(subarray_runs((4,), (0,), (4,), 0))

    @settings(max_examples=100, deadline=None)
    @given(subarray_case(), st.sampled_from([1, 2, 4, 8]))
    def test_runs_cover_exactly_the_subarray(self, case, itemsize):
        """The runs' bytes are exactly the subarray's elements, in order."""
        shape, start, count = case
        n = int(np.prod(shape))
        flat = np.arange(n * itemsize, dtype=np.uint8)
        arr = flat.reshape(shape + (itemsize,))
        sl = tuple(slice(s, s + c) for s, c in zip(start, count))
        expected = arr[sl].reshape(-1)
        got = np.concatenate(
            [flat[o : o + l] for o, l in subarray_runs(shape, start, count, itemsize)]
            or [np.empty(0, np.uint8)]
        )
        assert np.array_equal(got, expected)

    @settings(max_examples=100, deadline=None)
    @given(subarray_case(), st.sampled_from([1, 4]))
    def test_stats_match_enumeration(self, case, itemsize):
        shape, start, count = case
        runs = list(subarray_runs(shape, start, count, itemsize))
        stats = subarray_run_stats(shape, start, count, itemsize)
        assert stats.num_runs == len(runs)
        assert stats.total_bytes == sum(l for _o, l in runs)
        if runs:
            assert stats.run_bytes == runs[0][1]
            assert stats.first_offset == runs[0][0]
            assert stats.last_end == runs[-1][0] + runs[-1][1]
