"""Raw volume format."""

import numpy as np
import pytest

from repro.formats.raw import RawVolume
from repro.storage.store import MemoryStore
from repro.utils.errors import FormatError, StorageError


class TestRawVolume:
    def test_roundtrip(self, rng):
        data = rng.random((4, 5, 6)).astype(np.float32)
        vol = RawVolume.write(data)
        assert np.array_equal(vol.read_all(), data)

    def test_subarray(self, rng):
        data = rng.random((6, 6, 6)).astype(np.float32)
        vol = RawVolume.write(data)
        sub = vol.read_subarray((1, 2, 3), (2, 3, 2))
        assert np.array_equal(sub, data[1:3, 2:5, 3:5])

    def test_file_ranges_row_major(self):
        vol = RawVolume.virtual((4, 4, 4))
        ranges = list(vol.subarray_file_ranges((0, 0, 0), (1, 2, 4)))
        assert ranges == [(0, 32)]  # two full rows merge into one run

    def test_virtual_volume_size(self):
        vol = RawVolume.virtual((1120, 1120, 1120))
        assert vol.nbytes == 1120**3 * 4  # the 5.3 GB preprocessed file

    def test_virtual_reads_rejected(self):
        vol = RawVolume.virtual((8, 8, 8))
        with pytest.raises(StorageError):
            vol.read_all()

    def test_non_3d_rejected(self):
        with pytest.raises(FormatError):
            RawVolume.write(np.zeros((4, 4), np.float32))

    def test_short_store_rejected(self):
        with pytest.raises(FormatError, match="cannot hold"):
            RawVolume(MemoryStore(b"\x00" * 10), (4, 4, 4))

    def test_dtype_conversion(self, rng):
        data = rng.random((3, 3, 3))
        vol = RawVolume.write(data, dtype=">f8")
        got = vol.read_all()
        assert got.dtype.byteorder in ("=", "<", "|")
        assert np.allclose(got, data)
