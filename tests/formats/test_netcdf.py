"""netCDF classic format: self round-trips, scipy cross-validation,
layout semantics, and the paper's format constraints."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.io import netcdf_file

from repro.formats.netcdf import (
    NC_FLOAT,
    NC_INT,
    NetCDFFile,
    NetCDFWriter,
    nc_type_for_dtype,
)
from repro.utils.errors import FormatError


def build_vh1_style(version=2, grid=(6, 5, 4), nvars=5, seed=0):
    rng = np.random.default_rng(seed)
    nz, ny, nx = grid
    names = [f"var{i}" for i in range(nvars)]
    data = {n: rng.random(grid).astype(np.float32) for n in names}
    w = NetCDFWriter(version=version)
    w.create_dimension("z", None)
    w.create_dimension("y", ny)
    w.create_dimension("x", nx)
    for n in names:
        w.create_variable(n, np.float32, ("z", "y", "x"))
        w.set_variable_data(n, data[n])
    return w, data


class TestWriterValidation:
    def test_only_one_record_dimension(self):
        w = NetCDFWriter()
        w.create_dimension("t", None)
        with pytest.raises(FormatError, match="one record"):
            w.create_dimension("t2", None)

    def test_record_dim_must_be_first(self):
        w = NetCDFWriter()
        w.create_dimension("t", None)
        w.create_dimension("x", 4)
        with pytest.raises(FormatError, match="first dimension"):
            w.create_variable("v", np.float32, ("x", "t"))

    def test_unknown_dimension_rejected(self):
        w = NetCDFWriter()
        with pytest.raises(FormatError, match="undefined dimension"):
            w.create_variable("v", np.float32, ("nope",))

    def test_duplicate_names_rejected(self):
        w = NetCDFWriter()
        w.create_dimension("x", 2)
        w.create_variable("v", np.float32, ("x",))
        with pytest.raises(FormatError, match="already defined"):
            w.create_variable("v", np.float32, ("x",))

    def test_shape_mismatch_rejected(self):
        w = NetCDFWriter()
        w.create_dimension("x", 4)
        w.create_variable("v", np.float32, ("x",))
        with pytest.raises(FormatError, match="does not match"):
            w.set_variable_data("v", np.zeros(5, np.float32))

    def test_bad_version_rejected(self):
        with pytest.raises(FormatError):
            NetCDFWriter(version=3)

    def test_int64_variable_requires_cdf5(self):
        w = NetCDFWriter(version=1)
        w.create_dimension("x", 2)
        with pytest.raises(FormatError, match="CDF-5"):
            w.create_variable("v", np.int64, ("x",))

    def test_record_count_mismatch_rejected(self):
        w = NetCDFWriter()
        w.create_dimension("t", None)
        w.create_variable("a", np.float32, ("t",))
        w.create_variable("b", np.float32, ("t",))
        w.set_variable_data("a", np.zeros(3, np.float32))
        w.set_variable_data("b", np.zeros(4, np.float32))
        with pytest.raises(FormatError, match="disagree"):
            w.write()


class TestRoundTrip:
    @pytest.mark.parametrize("version", (1, 2, 5))
    def test_vh1_style_roundtrip(self, version):
        w, data = build_vh1_style(version=version)
        nc = NetCDFFile.from_bytes(w.write().store.getvalue())
        assert nc.version == version
        assert nc.numrecs == 6
        for n, d in data.items():
            assert np.array_equal(nc.read_variable(n), d)

    @pytest.mark.parametrize("version", (1, 2, 5))
    def test_subarray_reads(self, version):
        w, data = build_vh1_style(version=version)
        nc = w.write()
        sub = nc.read_subarray("var2", (1, 2, 1), (3, 2, 2))
        assert np.array_equal(sub, data["var2"][1:4, 2:4, 1:3])

    def test_fixed_variables_roundtrip(self):
        w = NetCDFWriter(version=1)
        w.create_dimension("x", 7)
        w.create_variable("ints", np.int32, ("x",))
        w.create_variable("floats", np.float64, ("x",))
        w.create_variable("scalar", np.float32, ())
        w.set_variable_data("ints", np.arange(7, dtype=np.int32))
        w.set_variable_data("floats", np.linspace(0, 1, 7))
        w.set_variable_data("scalar", np.float32(3.5))
        nc = w.write()
        assert np.array_equal(nc.read_variable("ints"), np.arange(7))
        assert np.allclose(nc.read_variable("floats"), np.linspace(0, 1, 7))
        assert nc.read_variable("scalar") == np.float32(3.5)

    def test_attributes_roundtrip(self):
        w = NetCDFWriter()
        w.create_dimension("x", 2)
        w.set_attribute("title", "hello")
        w.set_attribute("step", 1530)
        w.set_attribute("weights", np.array([1.5, 2.5]))
        w.create_variable("v", np.float32, ("x",), {"units": "cm/s"})
        w.set_variable_data("v", np.zeros(2, np.float32))
        nc = w.write()
        assert nc.global_attributes["title"] == "hello"
        assert nc.global_attributes["step"] == 1530
        assert np.allclose(nc.global_attributes["weights"], [1.5, 2.5])
        assert nc.variables["v"].attributes["units"] == "cm/s"

    def test_single_record_variable_unpadded(self):
        """The spec's special case: one record var is packed tightly."""
        w = NetCDFWriter()
        w.create_dimension("t", None)
        w.create_dimension("x", 3)  # 3 floats = 12 bytes... but i2 -> 6 bytes
        w.create_variable("v", np.int16, ("t", "x"))
        w.set_variable_data("v", np.arange(12, dtype=np.int16).reshape(4, 3))
        nc = w.write()
        assert nc.record_stride == 6  # unpadded (not rounded to 8)
        assert np.array_equal(nc.read_variable("v"), np.arange(12).reshape(4, 3))

    def test_multi_record_variables_padded(self):
        w = NetCDFWriter()
        w.create_dimension("t", None)
        w.create_dimension("x", 3)
        for n in ("a", "b"):
            w.create_variable(n, np.int16, ("t", "x"))
            w.set_variable_data(n, np.arange(6, dtype=np.int16).reshape(2, 3))
        nc = w.write()
        assert nc.record_stride == 16  # two slabs of 6 padded to 8
        assert np.array_equal(nc.read_variable("b"), np.arange(6).reshape(2, 3))


class TestScipyCrossValidation:
    @pytest.mark.parametrize("version", (1, 2))
    def test_scipy_reads_our_files(self, version):
        w, data = build_vh1_style(version=version)
        raw = w.write().store.getvalue()
        f = netcdf_file(io.BytesIO(raw), "r", mmap=False)
        for n, d in data.items():
            assert np.array_equal(f.variables[n][:], d)

    def test_we_read_scipy_files(self):
        buf = io.BytesIO()
        f = netcdf_file(buf, "w")
        f.createDimension("t", None)
        f.createDimension("x", 5)
        v = f.createVariable("rec", "f8", ("t", "x"))
        v[:] = np.arange(15.0).reshape(3, 5)
        u = f.createVariable("fix", "i4", ("x",))
        u[:] = np.arange(5, dtype=np.int32)
        f.flush()
        nc = NetCDFFile.from_bytes(buf.getvalue())
        assert np.array_equal(nc.read_variable("rec"), np.arange(15.0).reshape(3, 5))
        assert np.array_equal(nc.read_variable("fix"), np.arange(5))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
    )
    def test_random_shapes_cross_validate(self, nrec, ny, nx, nvars):
        rng = np.random.default_rng(nrec * 100 + ny * 10 + nx)
        w = NetCDFWriter(version=1)
        w.create_dimension("t", None)
        w.create_dimension("y", ny)
        w.create_dimension("x", nx)
        data = {}
        for i in range(nvars):
            name = f"v{i}"
            data[name] = rng.random((nrec, ny, nx)).astype(np.float32)
            w.create_variable(name, np.float32, ("t", "y", "x"))
            w.set_variable_data(name, data[name])
        raw = w.write().store.getvalue()
        f = netcdf_file(io.BytesIO(raw), "r", mmap=False)
        for n, d in data.items():
            assert np.array_equal(f.variables[n][:], d)


class TestFormatConstraints:
    def test_cdf1_large_offsets_rejected(self):
        """CDF-1 cannot address beyond 2 GiB (32-bit begin offsets)."""
        w = NetCDFWriter(version=1)
        w.create_dimension("y", 1 << 14)
        w.create_dimension("x", 1 << 14)
        # Two 1 GiB fixed variables push the third's begin past 2^31.
        for name in ("a", "b", "c"):
            w.create_variable(name, np.float32, ("y", "x"))
        with pytest.raises(FormatError, match="CDF-1|32-bit"):
            w.write_header_only(numrecs=0)

    def test_classic_4gib_fixed_var_rejected(self):
        """The Sec. V-A constraint that forced record variables."""
        w = NetCDFWriter(version=2)
        w.create_dimension("z", 1120)
        w.create_dimension("y", 1120)
        w.create_dimension("x", 1120)
        w.create_variable("pressure", np.float64, ("z", "y", "x"))  # 11 GB
        with pytest.raises(FormatError, match="4 GiB"):
            w.write_header_only(numrecs=0)

    def test_cdf5_allows_huge_fixed_vars(self):
        w = NetCDFWriter(version=5)
        w.create_dimension("z", 1120)
        w.create_dimension("y", 1120)
        w.create_dimension("x", 1120)
        w.create_variable("pressure", np.float32, ("z", "y", "x"))
        nc = w.write_header_only(numrecs=0)
        v = nc.variables["pressure"]
        assert v.vsize == 1120**3 * 4
        assert not v.isrec

    def test_bad_magic_rejected(self):
        with pytest.raises(FormatError, match="magic"):
            NetCDFFile.from_bytes(b"HDF5" + b"\x00" * 100)

    def test_nc_type_mapping(self):
        assert nc_type_for_dtype(np.float32) == NC_FLOAT
        assert nc_type_for_dtype(np.int32) == NC_INT
        with pytest.raises(FormatError):
            nc_type_for_dtype(np.complex64)


class TestPaperScalePlanning:
    def test_virtual_27gb_file(self):
        """The 1120^3, 5-variable time step without 27 GB of RAM."""
        w = NetCDFWriter(version=2)
        w.create_dimension("z", None)
        w.create_dimension("y", 1120)
        w.create_dimension("x", 1120)
        for n in ("pressure", "density", "vx", "vy", "vz"):
            w.create_variable(n, np.float32, ("z", "y", "x"))
        nc = w.write_header_only(numrecs=1120)
        assert nc.store.size() > 28e9
        v = nc.variables["pressure"]
        assert v.shape == (1120, 1120, 1120)
        # One record = one 2D slice = 1120*1120*4 bytes (the paper's
        # tuning unit).
        assert nc.record_stride == 5 * 1120 * 1120 * 4
        intervals = v.layout.covering_intervals()
        assert len(intervals) == 1120
        assert intervals[0][1] == 1120 * 1120 * 4

    def test_total_size_predicts_write(self):
        w, _data = build_vh1_style(version=2)
        predicted = w.total_size()
        assert w.write().store.size() == predicted

    def test_describe_layout_shows_interleaving(self):
        w, _ = build_vh1_style(version=2, nvars=2)
        text = w.write().describe_layout(max_records=2)
        assert "record 0 of 'var0'" in text
        assert "record 0 of 'var1'" in text
        assert "record 1 of 'var0'" in text


class TestEdgeCases:
    def test_zero_records(self):
        w = NetCDFWriter()
        w.create_dimension("t", None)
        w.create_dimension("x", 3)
        w.create_variable("v", np.float32, ("t", "x"))
        nc = w.write()
        assert nc.numrecs == 0
        assert nc.read_variable("v").shape == (0, 3)
        assert nc.variables["v"].layout.covering_intervals() == []

    def test_variable_without_data_zero_filled(self):
        w = NetCDFWriter()
        w.create_dimension("x", 4)
        w.create_variable("v", np.int32, ("x",))
        nc = w.write()
        assert np.array_equal(nc.read_variable("v"), np.zeros(4, np.int32))

    def test_long_names_and_unicode(self):
        w = NetCDFWriter()
        w.create_dimension("x" * 60, 2)
        w.create_variable("velocity_" + "x" * 50, np.float32, ("x" * 60,))
        w.set_variable_data("velocity_" + "x" * 50, np.ones(2, np.float32))
        nc = NetCDFFile.from_bytes(w.write().store.getvalue())
        assert np.array_equal(nc.read_variable("velocity_" + "x" * 50), [1, 1])

    def test_empty_file_roundtrip(self):
        w = NetCDFWriter()
        nc = NetCDFFile.from_bytes(w.write().store.getvalue())
        assert nc.variables == {}
        assert nc.dimensions == {}
