"""The package's front door: top-level imports and versioning."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_one_liner_workflow(self):
        """The README quickstart, minified."""
        grid = (8, 8, 8)
        model = repro.SupernovaModel(grid, seed=1)
        handle = repro.NetCDFHandle(repro.write_vh1_netcdf(model), "vx")
        cam = repro.Camera.looking_at_volume(grid, width=12, height=12)
        tf = repro.TransferFunction.supernova(*model.value_range("vx"))
        pvr = repro.ParallelVolumeRenderer(repro.MPIWorld.for_cores(4), cam, tf)
        frame = pvr.render_frame(handle)
        assert frame.image.shape == (12, 12, 4)
        assert frame.timing.total_s > 0

    def test_model_entry_point(self):
        fm = repro.FrameModel(repro.DATASETS["1120"])
        assert fm.estimate(64).total_s > 0
