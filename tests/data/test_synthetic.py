"""Synthetic supernova model."""

import numpy as np
import pytest

from repro.data.synthetic import VARIABLES, SupernovaModel, supernova_field
from repro.utils.errors import ConfigError


class TestSupernovaModel:
    def test_deterministic_in_seed(self):
        a = SupernovaModel((12, 12, 12), seed=1).field("vx")
        b = SupernovaModel((12, 12, 12), seed=1).field("vx")
        c = SupernovaModel((12, 12, 12), seed=2).field("vx")
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_time_evolves_structure(self):
        a = SupernovaModel((12, 12, 12), time=0.0).field("density")
        b = SupernovaModel((12, 12, 12), time=1.0).field("density")
        assert not np.array_equal(a, b)

    def test_all_five_variables(self):
        m = SupernovaModel((8, 8, 8))
        fields = m.all_fields()
        assert set(fields) == set(VARIABLES)
        for f in fields.values():
            assert f.shape == (8, 8, 8)
            assert f.dtype == np.float32
            assert np.all(np.isfinite(f))

    def test_velocity_signed_antisymmetric_lobes(self):
        """The velocity components have both signs (the Fig. 1 look)."""
        vx = SupernovaModel((24, 24, 24)).field("vx")
        assert vx.min() < -0.05
        assert vx.max() > 0.05

    def test_density_positive(self):
        d = SupernovaModel((16, 16, 16)).field("density")
        assert d.min() > 0

    def test_exterior_quieter_than_interior(self):
        m = SupernovaModel((32, 32, 32))
        p = m.field("pressure")
        corner = abs(p[:3, :3, :3]).mean()
        center = abs(p[13:19, 13:19, 13:19]).mean()
        assert center > 2 * corner

    def test_unknown_variable_rejected(self):
        with pytest.raises(ConfigError):
            SupernovaModel((8, 8, 8)).field("temperature")

    def test_value_range_brackets_data(self):
        m = SupernovaModel((16, 16, 16))
        for v in VARIABLES:
            lo, hi = m.value_range(v)
            f = m.field(v)
            assert lo <= f.min() and f.max() <= hi + 0.3

    def test_convenience_wrapper(self):
        f = supernova_field((8, 8, 8), "vy", seed=3)
        assert f.shape == (8, 8, 8)

    def test_anisotropic_grid(self):
        f = SupernovaModel((8, 12, 16)).field("vz")
        assert f.shape == (8, 12, 16)
