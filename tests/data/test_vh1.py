"""VH-1-style file writers."""

import numpy as np
import pytest

from repro.data.synthetic import SupernovaModel
from repro.data.vh1 import (
    VH1_VARIABLES,
    extract_variable_raw,
    write_vh1_h5lite,
    write_vh1_netcdf,
)


@pytest.fixture(scope="module")
def model():
    return SupernovaModel((10, 10, 10), seed=77)


class TestNetCDFTimestep:
    def test_five_record_variables(self, model):
        nc = write_vh1_netcdf(model)
        assert set(nc.variables) == set(VH1_VARIABLES)
        assert all(v.isrec for v in nc.variables.values())
        assert nc.numrecs == 10

    def test_data_roundtrip(self, model):
        nc = write_vh1_netcdf(model)
        for name in VH1_VARIABLES:
            assert np.array_equal(nc.read_variable(name), model.field(name))

    def test_interleaving_matches_fig8(self, model):
        """Variables interleave record by record in definition order."""
        nc = write_vh1_netcdf(model)
        begins = [nc.variables[n].begin for n in VH1_VARIABLES]
        assert begins == sorted(begins)
        slab = 10 * 10 * 4
        assert begins[1] - begins[0] == slab
        assert nc.record_stride == 5 * slab

    def test_file_size_is_5x_raw(self, model):
        """"a file size approximately five times as large as a single
        variable in our raw format.\""""
        nc = write_vh1_netcdf(model)
        raw = extract_variable_raw(model)
        ratio = nc.store.size() / raw.store.size()
        assert 4.9 < ratio < 5.2

    def test_fixed_layout_variant(self, model):
        nc = write_vh1_netcdf(model, version=5, record_axis_unlimited=False)
        assert not any(v.isrec for v in nc.variables.values())
        for name in VH1_VARIABLES:
            assert np.array_equal(nc.read_variable(name), model.field(name))

    def test_attributes_present(self, model):
        nc = write_vh1_netcdf(model)
        assert "supernova" in nc.global_attributes["title"]
        assert nc.global_attributes["seed"] == 77


class TestOtherFormats:
    def test_raw_extraction(self, model):
        vol = extract_variable_raw(model, "vy")
        assert np.array_equal(vol.read_all(), model.field("vy"))

    def test_h5lite_conversion(self, model):
        f = write_vh1_h5lite(model)
        assert set(f.datasets) == set(VH1_VARIABLES)
        for name in VH1_VARIABLES:
            assert np.array_equal(f.read_dataset(name), model.field(name))

    def test_h5lite_contiguous_per_variable(self, model):
        f = write_vh1_h5lite(model)
        for name in VH1_VARIABLES:
            assert len(f.datasets[name].layout.covering_intervals()) == 1
