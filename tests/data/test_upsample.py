"""Upsampling (the paper's Sec. IV-B preprocessing)."""

import numpy as np
import pytest

from repro.data.synthetic import SupernovaModel
from repro.data.upsample import (
    input_region_for_output_block,
    upsample_bilinear,
    upsample_parallel_program,
    upsample_trilinear,
)
from repro.render.decomposition import BlockDecomposition
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld


class TestSerialUpsample:
    def test_output_shape(self):
        out = upsample_trilinear(np.zeros((4, 5, 6), np.float32), 2)
        assert out.shape == (8, 10, 12)

    def test_factor_one_is_copy(self, rng):
        data = rng.random((4, 4, 4)).astype(np.float32)
        out = upsample_trilinear(data, 1)
        assert np.array_equal(out, data)
        assert out is not data

    def test_endpoints_preserved(self, rng):
        data = rng.random((4, 4, 4)).astype(np.float32)
        out = upsample_trilinear(data, 2)
        assert out[0, 0, 0] == pytest.approx(data[0, 0, 0])
        assert out[-1, -1, -1] == pytest.approx(data[-1, -1, -1])

    def test_linear_field_upsamples_exactly(self):
        """Trilinear interpolation reproduces (tri)linear fields."""
        z, y, x = np.meshgrid(np.arange(4.0), np.arange(4.0), np.arange(4.0), indexing="ij")
        data = (2 * x + 3 * y - z).astype(np.float32)
        out = upsample_trilinear(data, 2)
        zz, yy, xx = np.meshgrid(
            np.linspace(0, 3, 8), np.linspace(0, 3, 8), np.linspace(0, 3, 8), indexing="ij"
        )
        expected = (2 * xx + 3 * yy - zz).astype(np.float32)
        assert np.allclose(out, expected, atol=1e-5)

    def test_value_range_preserved(self, rng):
        data = rng.random((6, 6, 6)).astype(np.float32)
        out = upsample_trilinear(data, 4)
        assert out.min() >= data.min() - 1e-6
        assert out.max() <= data.max() + 1e-6

    def test_structure_preserved(self):
        """The paper: "Upsampling preserves the structure of the data".

        The output grid is a slight rescale of the input (endpoints
        map to endpoints), so strided downsampling is not an exact
        inverse — but the fields must stay strongly correlated.
        """
        model = SupernovaModel((12, 12, 12))
        data = model.field("vx")
        up = upsample_trilinear(data, 2)
        corr = np.corrcoef(up[::2, ::2, ::2].ravel(), data.ravel())[0, 1]
        assert corr > 0.9

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            upsample_trilinear(np.zeros((2, 2), np.float32), 2)
        with pytest.raises(ConfigError):
            upsample_trilinear(np.zeros((2, 2, 2), np.float32), 0)


class TestParallelUpsample:
    def test_matches_serial(self, rng):
        in_shape = (8, 8, 8)
        factor = 2
        data = rng.random(in_shape).astype(np.float32)
        serial = upsample_trilinear(data, factor)
        out_shape = tuple(s * factor for s in in_shape)

        nprocs = 8
        dec = BlockDecomposition(out_shape, nprocs)
        regions = []
        blocks = []
        for b in dec.blocks():
            region = input_region_for_output_block(b.start, b.count, in_shape, out_shape)
            regions.append(region)
            (rs, rc) = region
            blocks.append(data[rs[0] : rs[0] + rc[0], rs[1] : rs[1] + rc[1], rs[2] : rs[2] + rc[2]])

        res = MPIWorld.for_cores(nprocs).run(
            upsample_parallel_program, blocks, regions, in_shape, factor
        )
        assembled = np.empty(out_shape, dtype=np.float32)
        for b, out in zip(dec.blocks(), res.values):
            sl = tuple(slice(s, s + c) for s, c in zip(b.start, b.count))
            assembled[sl] = out
        assert np.allclose(assembled, serial, atol=1e-5)


class TestBilinearUpsample:
    """upsample_bilinear: the ladder-preview path (2D images)."""

    def test_output_shape_and_dtype(self, rng):
        img = rng.random((6, 8)).astype(np.float32)
        out = upsample_bilinear(img, 12, 16)
        assert out.shape == (12, 16)
        assert out.dtype == np.float32

    def test_channel_axis_broadcasts(self, rng):
        img = rng.random((6, 8, 3)).astype(np.float32)
        out = upsample_bilinear(img, 12, 16)
        assert out.shape == (12, 16, 3)
        # Each channel upsamples independently.
        for c in range(3):
            assert np.allclose(out[..., c], upsample_bilinear(img[..., c], 12, 16))

    def test_same_size_round_trip_is_a_copy(self, rng):
        img = rng.random((5, 7)).astype(np.float32)
        out = upsample_bilinear(img, 5, 7)
        assert np.array_equal(out, img)
        assert out is not img

    def test_endpoints_preserved(self, rng):
        img = rng.random((4, 4)).astype(np.float32)
        out = upsample_bilinear(img, 9, 9)
        assert out[0, 0] == pytest.approx(img[0, 0])
        assert out[-1, -1] == pytest.approx(img[-1, -1])
        assert out[0, -1] == pytest.approx(img[0, -1])

    def test_linear_image_upsamples_exactly(self):
        y, x = np.meshgrid(np.arange(5.0), np.arange(6.0), indexing="ij")
        img = (3 * x - 2 * y).astype(np.float32)
        out = upsample_bilinear(img, 9, 11)
        yy, xx = np.meshgrid(
            np.linspace(0, 4, 9), np.linspace(0, 5, 11), indexing="ij"
        )
        assert np.allclose(out, (3 * xx - 2 * yy).astype(np.float32), atol=1e-5)

    def test_value_range_preserved(self, rng):
        img = rng.random((6, 6)).astype(np.float32)
        out = upsample_bilinear(img, 24, 24)
        assert out.min() >= img.min() - 1e-6
        assert out.max() <= img.max() + 1e-6

    def test_downsample_round_trip_stays_correlated(self):
        """Coarse render -> bilinear preview approximates the full-res
        frame structure (what time_to_quality measures)."""
        model = SupernovaModel((12, 12, 12))
        img = model.field("vx")[:, :, 6]
        up = upsample_bilinear(upsample_bilinear(img, 6, 6), 12, 12)
        corr = np.corrcoef(up.ravel(), img.ravel())[0, 1]
        assert corr > 0.8

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            upsample_bilinear(np.zeros((4,), np.float32), 8, 8)
        with pytest.raises(ConfigError):
            upsample_bilinear(np.zeros((4, 4), np.float32), 0, 8)
