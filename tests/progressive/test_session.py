"""ProgressiveSession: camera-move cancellation on the DES engine."""

import numpy as np
import pytest

from repro.progressive import ProgressiveRenderer, ProgressiveSession

from tests.progressive.test_renderer import make_renderer


@pytest.fixture(scope="module")
def reference_ladder():
    """One complete ladder, for its level clock (and oracle frames)."""
    renderer, handle, field = make_renderer()
    return ProgressiveRenderer(renderer, levels=3).render_ladder(handle, field=field)


def run_session(cancel_after_s):
    renderer, handle, field = make_renderer()
    session = ProgressiveSession(ProgressiveRenderer(renderer, levels=3))
    return session.run(handle, field=field, cancel_after_s=cancel_after_s)


class TestCancellation:
    def test_no_move_runs_to_completion(self, reference_ladder):
        result = run_session(None)
        assert len(result.levels) == 3
        assert not result.cancelled
        assert result.final is not None
        assert result.accounting_failures() == []

    def test_move_during_first_level_keeps_only_coarsest(self, reference_ladder):
        """The in-flight level completes; everything un-started dies.
        A ladder always delivers at least the coarsest preview."""
        t = reference_ladder.levels[0].t_done_s / 2
        result = run_session(t)
        assert len(result.levels) == 1
        assert result.cancelled
        assert result.cancelled_levels == 2
        assert result.levels[0].scale == 4
        assert result.final is None
        assert result.accounting_failures() == []

    def test_move_mid_ladder_cancels_the_tail(self, reference_ladder):
        ends = [lf.t_done_s for lf in reference_ladder.levels]
        result = run_session((ends[0] + ends[1]) / 2)
        assert len(result.levels) == 2
        assert result.cancelled
        assert result.final is None  # full-res level never started
        assert result.accounting_failures() == []

    def test_move_at_level_boundary_beats_the_next_level(self, reference_ladder):
        """A move scheduled at exactly a level's end time wins the
        engine's deterministic tie (it was scheduled first), so the
        next level never starts."""
        result = run_session(reference_ladder.levels[0].t_done_s)
        assert len(result.levels) == 1
        assert result.cancelled
        assert result.accounting_failures() == []

    def test_move_during_final_level_cancels_nothing(self, reference_ladder):
        ends = [lf.t_done_s for lf in reference_ladder.levels]
        result = run_session((ends[1] + ends[2]) / 2)
        assert len(result.levels) == 3
        assert not result.cancelled
        assert result.final is not None
        assert result.accounting_failures() == []

    def test_delivered_levels_match_the_eager_ladder(self, reference_ladder):
        """The session renders the same frames on the same clock as
        render_ladder — cancellation only removes the tail."""
        ends = [lf.t_done_s for lf in reference_ladder.levels]
        result = run_session((ends[0] + ends[1]) / 2)
        for got, want in zip(result.levels, reference_ladder.levels):
            assert np.array_equal(got.frame.image, want.frame.image)
            assert got.t_start_s == pytest.approx(want.t_start_s)
            assert got.t_done_s == pytest.approx(want.t_done_s)

    def test_cancel_time_is_recorded(self, reference_ladder):
        t = reference_ladder.levels[0].t_done_s / 2
        result = run_session(t)
        assert result.cancel_after_s == t
