"""ProgressiveRenderer: real frames per level, bitwise-exact final."""

import numpy as np
import pytest

from repro.core import ParallelVolumeRenderer
from repro.core.pipeline import DegradePolicy
from repro.data import SupernovaModel, extract_variable_raw
from repro.obs import Tracer
from repro.pio import RawHandle
from repro.progressive import ProgressiveRenderer, ladder_edges
from repro.render import Camera, TransferFunction
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld, ParallelConfig

GRID = (12, 12, 12)
IMAGE = 24
CORES = 8


def make_renderer(compositor="directsend", workers=1, degrade=None):
    model = SupernovaModel(GRID, seed=1530)
    handle = RawHandle(extract_variable_raw(model, "vx"))
    camera = Camera.looking_at_volume(GRID, width=IMAGE, height=IMAGE)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    parallel = ParallelConfig(workers=workers) if workers > 1 else None
    renderer = ParallelVolumeRenderer(
        MPIWorld.for_cores(CORES), camera, tf, step=0.8,
        parallel=parallel, compositor=compositor, degrade=degrade,
    )
    return renderer, handle, model.field("vx")


class TestLadder:
    @pytest.mark.parametrize("compositor", ["directsend", "dfb"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_final_level_bitwise_identical_to_direct(self, compositor, workers):
        """The oracle: the ladder's last level IS the direct render —
        image, stage timings, message count, bytes on the wire."""
        renderer, handle, field = make_renderer(compositor, workers)
        ladder = ProgressiveRenderer(renderer, levels=3).render_ladder(
            handle, field=field
        )
        oracle_renderer, oracle_handle, _ = make_renderer(compositor, workers)
        direct = oracle_renderer.render_frame(oracle_handle)
        final = ladder.final
        assert final is not None
        assert np.array_equal(final.image, direct.image)
        assert final.timing == direct.timing
        assert final.messages == direct.messages
        assert final.bytes_sent == direct.bytes_sent

    def test_levels_refine_coarse_to_fine(self):
        renderer, handle, field = make_renderer()
        result = ProgressiveRenderer(renderer, levels=3).render_ladder(
            handle, field=field
        )
        assert [lf.width for lf in result.levels] == list(ladder_edges(IMAGE, 3))
        assert [lf.scale for lf in result.levels] == [4, 2, 1]
        assert result.accounting_failures() == []

    def test_ttfp_is_first_delivery_and_clock_is_serial(self):
        renderer, handle, field = make_renderer()
        result = ProgressiveRenderer(renderer, levels=3).render_ladder(
            handle, field=field
        )
        assert result.ttfp_s == result.levels[0].t_done_s
        assert result.ttfp_s < result.total_s
        for a, b in zip(result.levels, result.levels[1:]):
            assert b.t_start_s == pytest.approx(a.t_done_s)

    def test_single_level_ladder_is_a_direct_render(self):
        renderer, handle, field = make_renderer()
        result = ProgressiveRenderer(renderer, levels=1).render_ladder(
            handle, field=field
        )
        oracle_renderer, oracle_handle, _ = make_renderer()
        direct = oracle_renderer.render_frame(oracle_handle)
        assert len(result.levels) == 1
        assert np.array_equal(result.final.image, direct.image)
        assert result.accounting_failures() == []

    def test_trace_spans_reconcile(self):
        renderer, handle, field = make_renderer()
        tracer = Tracer(enabled=True)
        result = ProgressiveRenderer(renderer, levels=3, tracer=tracer).render_ladder(
            handle, field=field
        )
        assert result.accounting_failures() == []  # includes span counts
        from repro.obs.tracer import CAT_PROGRESSIVE

        spans = [s for s in tracer.spans if s.cat == CAT_PROGRESSIVE]
        assert sum(1 for s in spans if s.name == "level") == 3
        assert sum(1 for s in spans if s.name == "ttfp") == 1

    def test_preview_upsamples_to_final_resolution(self):
        renderer, handle, field = make_renderer()
        result = ProgressiveRenderer(renderer, levels=3).render_ladder(
            handle, field=field
        )
        preview = result.preview(0)
        assert preview.shape == result.final.image.shape
        # A large tolerance is met by the first level already; tighter
        # ones only later — time to quality is monotone in the bound.
        loose = result.time_to_quality(10.0)
        assert loose == result.levels[0].t_done_s
        exact = result.time_to_quality(0.0)
        assert exact == result.total_s

    def test_rejects_bad_levels(self):
        renderer, _, _ = make_renderer()
        with pytest.raises(ConfigError):
            ProgressiveRenderer(renderer, levels=0)


class TestDegradeTruncation:
    def test_deadline_pressure_drops_intermediates(self):
        """A DegradePolicy the full-res I/O alone engages truncates the
        ladder to (coarsest, final) — never a degraded final frame."""
        degrade = DegradePolicy(frame_deadline_s=1e-6)
        renderer, handle, field = make_renderer(degrade=degrade)
        result = ProgressiveRenderer(renderer, levels=3).render_ladder(
            handle, field=field
        )
        assert result.truncated
        assert len(result.levels) == 2
        assert result.levels[0].scale == 4 and result.levels[-1].scale == 1
        assert result.accounting_failures() == []
        # The final frame still matches the direct render bitwise: the
        # per-frame degrade is held off inside the ladder.
        oracle_renderer, oracle_handle, _ = make_renderer()
        direct = oracle_renderer.render_frame(oracle_handle)
        assert np.array_equal(result.final.image, direct.image)
        assert not result.final.degraded

    def test_loose_deadline_keeps_every_level(self):
        degrade = DegradePolicy(frame_deadline_s=1e9)
        renderer, handle, field = make_renderer(degrade=degrade)
        result = ProgressiveRenderer(renderer, levels=3).render_ladder(
            handle, field=field
        )
        assert not result.truncated
        assert len(result.levels) == 3
