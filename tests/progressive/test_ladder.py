"""Ladder arithmetic and the multiresolution pyramid."""

import numpy as np
import pytest

from repro.progressive import (
    build_pyramid,
    check_ladder_fits,
    ladder_edges,
    ladder_scales,
    level_edge,
    subsample,
)
from repro.render.camera import Camera
from repro.utils.errors import ConfigError


class TestScales:
    def test_power_of_two_coarse_first(self):
        assert ladder_scales(4) == (8, 4, 2, 1)
        assert ladder_scales(2) == (2, 1)

    def test_single_level_is_full_res(self):
        assert ladder_scales(1) == (1,)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            ladder_scales(0)

    def test_edges_end_at_full(self):
        assert ladder_edges(24, 3) == (6, 12, 24)
        assert ladder_edges(24, 1) == (24,)

    def test_edge_floor_is_one_pixel(self):
        assert level_edge(3, 8) == 1

    def test_level_edge_matches_camera_scaled(self):
        """The ladder's edge arithmetic must agree with Camera.scaled —
        the farm prices levels by edge without building cameras."""
        cam = Camera.looking_at_volume((12, 12, 12), width=24, height=24)
        for f in (1, 2, 4, 8):
            scaled = cam.scaled(1.0 / f)
            assert scaled.width == level_edge(24, f)
            assert scaled.height == level_edge(24, f)


class TestPyramid:
    def test_subsample_shape_and_dtype(self, rng):
        field = rng.random((12, 10, 9)).astype(np.float32)
        out = subsample(field, 2)
        assert out.shape == (6, 5, 5)
        assert out.dtype == field.dtype
        assert out.flags["C_CONTIGUOUS"]

    def test_subsample_keeps_corner_voxel(self, rng):
        field = rng.random((8, 8, 8)).astype(np.float32)
        out = subsample(field, 4)
        assert out[0, 0, 0] == field[0, 0, 0]
        assert np.array_equal(out, field[::4, ::4, ::4])

    def test_scale_one_is_contiguous_copy(self, rng):
        field = rng.random((4, 4, 4)).astype(np.float32)[::1]
        out = subsample(field, 1)
        assert np.array_equal(out, field)

    def test_pyramid_last_entry_is_the_input(self, rng):
        field = rng.random((12, 12, 12)).astype(np.float32)
        pyramid = build_pyramid(field, 3)
        assert len(pyramid) == 3
        assert pyramid[-1] is field
        assert pyramid[0].shape == (3, 3, 3)
        assert pyramid[1].shape == (6, 6, 6)

    def test_pyramid_rejects_collapsing_grid(self):
        with pytest.raises(ConfigError, match="fewer levels"):
            build_pyramid(np.zeros((4, 4, 4), np.float32), 3)
        check_ladder_fits((4, 4, 4), 2)  # 2 voxels per axis is the floor

    def test_pyramid_rejects_non_3d(self):
        with pytest.raises(ConfigError, match="3D"):
            build_pyramid(np.zeros((4, 4), np.float32), 2)
