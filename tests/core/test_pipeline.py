"""End-to-end pipeline: images and instrumentation."""

import numpy as np
import pytest

from repro.compositing.policy import IDENTITY_POLICY, fixed_policy
from repro.core import ParallelVolumeRenderer
from repro.data import SupernovaModel, extract_variable_raw, write_vh1_h5lite, write_vh1_netcdf
from repro.pio import H5LiteHandle, IOHints, NetCDFHandle, RawHandle
from repro.render import Camera, TransferFunction, render_volume_serial
from repro.storage.accesslog import AccessLog
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)
STEP = 0.8


@pytest.fixture(scope="module")
def model():
    return SupernovaModel(GRID, seed=3)


@pytest.fixture(scope="module")
def cam():
    return Camera.looking_at_volume(GRID, width=40, height=36)


@pytest.fixture(scope="module")
def tf(model):
    return TransferFunction.supernova(*model.value_range("vx"))


@pytest.fixture(scope="module")
def reference(model, cam, tf):
    return render_volume_serial(cam, model.field("vx"), tf, step=STEP)


def make_pvr(nprocs, cam, tf, **kwargs):
    world = MPIWorld.for_cores(nprocs)
    hints = kwargs.pop("hints", IOHints(cb_buffer_size=4096, cb_nodes=2))
    return ParallelVolumeRenderer(world, cam, tf, step=STEP, hints=hints, **kwargs)


class TestFrameCorrectness:
    @pytest.mark.parametrize("nprocs", (4, 8, 16))
    def test_netcdf_frame_matches_serial(self, nprocs, model, cam, tf, reference):
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        res = make_pvr(nprocs, cam, tf).render_frame(handle)
        assert np.abs(res.image - reference).max() < 5e-3

    def test_raw_frame_matches_serial(self, model, cam, tf, reference):
        handle = RawHandle(extract_variable_raw(model, "vx"))
        res = make_pvr(8, cam, tf).render_frame(handle)
        assert np.abs(res.image - reference).max() < 5e-3

    def test_h5lite_frame_matches_serial(self, model, cam, tf, reference):
        handle = H5LiteHandle(write_vh1_h5lite(model), "vx")
        res = make_pvr(8, cam, tf).render_frame(handle)
        assert np.abs(res.image - reference).max() < 5e-3

    def test_compositor_limiting_same_image(self, model, cam, tf):
        handle = RawHandle(extract_variable_raw(model, "vx"))
        full = make_pvr(8, cam, tf, policy=IDENTITY_POLICY).render_frame(handle)
        limited = make_pvr(8, cam, tf, policy=fixed_policy(2)).render_frame(handle)
        assert np.allclose(full.image, limited.image, atol=1e-5)
        assert limited.num_compositors == 2
        assert full.num_compositors == 8


class TestFrameInstrumentation:
    def test_timing_components_positive(self, model, cam, tf):
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        res = make_pvr(8, cam, tf).render_frame(handle)
        t = res.timing
        assert t.io_s > 0 and t.render_s > 0 and t.composite_s > 0
        assert t.total_s == pytest.approx(t.io_s + t.render_s + t.composite_s)
        assert t.pct_io + t.pct_render + t.pct_composite == pytest.approx(100.0)

    def test_io_dominates_like_the_paper(self, model, cam, tf):
        """At any scale the modeled collective read dwarfs rendering of
        a small image — the paper's central observation."""
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        res = make_pvr(8, cam, tf).render_frame(handle)
        assert res.timing.pct_io > 50

    def test_io_report_attached(self, model, cam, tf):
        handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
        log = AccessLog()
        res = make_pvr(8, cam, tf).render_frame(handle, log=log)
        assert res.io_report.physical_bytes >= res.io_report.requested_bytes * 0.9
        assert log.count == res.io_report.num_accesses

    def test_str_of_timing(self, model, cam, tf):
        handle = RawHandle(extract_variable_raw(model, "vx"))
        res = make_pvr(4, cam, tf).render_frame(handle)
        assert "io" in str(res.timing)

    def test_messages_counted(self, model, cam, tf):
        handle = RawHandle(extract_variable_raw(model, "vx"))
        res = make_pvr(8, cam, tf).render_frame(handle)
        assert res.messages >= res.schedule.total_messages


class TestGhostModes:
    def test_exchange_mode_matches_io_mode(self, model, cam, tf):
        """Halo messages and overlapping reads produce identical frames."""
        from repro.data import extract_variable_raw
        from repro.pio import RawHandle

        handle = RawHandle(extract_variable_raw(model, "vx"))
        via_io = make_pvr(8, cam, tf, ghost_mode="io").render_frame(handle)
        via_msgs = make_pvr(8, cam, tf, ghost_mode="exchange").render_frame(handle)
        assert np.allclose(via_io.image, via_msgs.image, atol=1e-5)
        # Exchange mode reads fewer bytes (no overlap)...
        assert via_msgs.io_report.requested_bytes < via_io.io_report.requested_bytes
        # ...but moves more messages (the halos).
        assert via_msgs.messages > via_io.messages

    def test_bad_ghost_mode_rejected(self, model, cam, tf):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError, match="ghost_mode"):
            make_pvr(4, cam, tf, ghost_mode="psychic")
