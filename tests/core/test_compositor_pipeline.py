"""The pipeline's compositor plumbing: pins, parity, and degrade modes.

The bitwise pins are the PR's non-regression contract: a zero-fault
default (direct-send) frame must be byte-identical to the pre-registry
pipeline — same pixels, same message totals, same stage seconds.  The
hashes below were captured from the pipeline before the backend
registry existed and verified identical after it.
"""

import hashlib

import numpy as np
import pytest

from repro.core import DegradePolicy, ParallelVolumeRenderer
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle
from repro.render import Camera, TransferFunction
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld

#: (grid, cores, image, step) -> sha256 of the float32 RGBA frame,
#: messages, bytes on the wire.  Captured pre-registry (see module doc).
PINNED = {
    (16, 8, 48, 0.8): (
        "6945790f215f2b2d72289550f2bab703a8039779d63e9ad6c8fa7f18c8540d45",
        69, 147216,
    ),
    (24, 16, 64, 0.7): (
        "aca1c761789ecbc440810e90a026a431ca9af1f06897589bf1d44b38cb07c0cd",
        181, 347440,
    ),
}


def render(grid, cores, image, step, **kwargs):
    model = SupernovaModel((grid,) * 3, seed=1530)
    cam = Camera.looking_at_volume((grid,) * 3, width=image, height=image)
    tf = TransferFunction.supernova(*model.value_range("vx"))
    handle = NetCDFHandle(write_vh1_netcdf(model), "vx")
    pvr = ParallelVolumeRenderer(
        MPIWorld.for_cores(cores), cam, tf, step=step,
        hints=IOHints(cb_buffer_size=1 << 16, cb_nodes=cores // 4),
        **kwargs,
    )
    return pvr.render_frame(handle)


class TestBitwisePins:
    @pytest.mark.parametrize("config", sorted(PINNED))
    def test_default_directsend_frame_is_frozen(self, config):
        sha, messages, nbytes = PINNED[config]
        res = render(*config)
        assert res.compositor == "directsend"
        assert hashlib.sha256(res.image.tobytes()).hexdigest() == sha
        assert res.messages == messages
        assert res.bytes_sent == nbytes

    def test_dfb_reproduces_the_pinned_frame(self):
        """Same ownership map, same pixels — only the timing moves."""
        config = (16, 8, 48, 0.8)
        sha, messages, nbytes = PINNED[config]
        res = render(*config, compositor="dfb")
        assert hashlib.sha256(res.image.tobytes()).hexdigest() == sha
        assert res.messages == messages
        assert res.bytes_sent == nbytes

    def test_zero_budget_puzzlepiece_reproduces_the_pinned_frame(self):
        config = (16, 8, 48, 0.8)
        sha, messages, _nbytes = PINNED[config]
        res = render(*config, compositor="puzzlepiece")
        assert hashlib.sha256(res.image.tobytes()).hexdigest() == sha
        assert res.messages == messages


class TestBackendSelection:
    def test_unknown_compositor_fails_at_construction(self):
        model = SupernovaModel((12,) * 3, seed=1)
        cam = Camera.looking_at_volume((12,) * 3, width=16, height=16)
        tf = TransferFunction.supernova(*model.value_range("vx"))
        with pytest.raises(ConfigError, match="unknown compositor"):
            ParallelVolumeRenderer(
                MPIWorld.for_cores(4), cam, tf, compositor="spl4tting"
            )

    def test_result_carries_compositor_and_stats(self):
        res = render(16, 8, 48, 0.8, compositor="puzzlepiece", error_budget=0.05)
        assert res.compositor == "puzzlepiece"
        assert res.compose_stats is not None
        assert res.compose_stats["pieces_dropped"] > 0
        assert res.compose_stats["error_bound"] <= 0.05

    def test_every_backend_renders_the_same_scene(self):
        exact = render(16, 8, 48, 0.8)
        for name in ("dfb", "binaryswap", "radixk", "serial"):
            res = render(16, 8, 48, 0.8, compositor=name)
            assert np.allclose(res.image, exact.image, atol=1e-5), name

    def test_frame_timing_reconciles_across_backends(self):
        for name in ("directsend", "dfb", "puzzlepiece"):
            res = render(16, 8, 48, 0.8, compositor=name)
            t = res.timing
            assert t.io_s > 0 and t.render_s > 0 and t.composite_s > 0
            assert t.total_s == pytest.approx(t.io_s + t.render_s + t.composite_s)


class TestDegradeViaErrorBudget:
    DEADLINE = DegradePolicy(frame_deadline_s=1e-6, error_budget=0.1)

    def test_deadline_pressure_spends_error_budget(self):
        """With puzzlepiece, degrade keeps full resolution and drops
        low-contribution pieces instead of shrinking the image."""
        res = render(
            16, 8, 48, 0.8, compositor="puzzlepiece", degrade=self.DEADLINE
        )
        assert res.degraded
        assert res.image.shape == (48, 48, 4)  # resolution kept
        assert res.compose_stats["pieces_dropped"] > 0
        assert res.compose_stats["error_bound"] <= 0.1

    def test_exact_backend_falls_back_to_resolution_scaling(self):
        res = render(16, 8, 48, 0.8, degrade=self.DEADLINE)
        assert res.degraded
        assert res.image.shape == (24, 24, 4)  # the blunt knob

    def test_no_pressure_no_degrade(self):
        relaxed = DegradePolicy(frame_deadline_s=1e6, error_budget=0.1)
        res = render(16, 8, 48, 0.8, compositor="puzzlepiece", degrade=relaxed)
        assert not res.degraded
        assert res.compose_stats["pieces_dropped"] == 0
