"""Frame-plan cache: hits must render exactly what a cold build would."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compositing.schedule import (
    clear_schedule_cache,
    schedule_cache_info,
    schedule_from_geometry,
)
from repro.core import ParallelVolumeRenderer
from repro.core.plan import FramePlanCache, block_world_bounds
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle
from repro.render.camera import Camera
from repro.render.decomposition import BlockDecomposition
from repro.render.transfer import TransferFunction
from repro.render.volume import VolumeBlock
from repro.vmpi import MPIWorld

GRID = (16, 16, 16)


@pytest.fixture(scope="module")
def model():
    return SupernovaModel(GRID, seed=3)


@pytest.fixture(scope="module")
def handle(model):
    return NetCDFHandle(write_vh1_netcdf(model), "vx")


def make_pvr(cam, tf, nprocs=8):
    return ParallelVolumeRenderer(
        MPIWorld.for_cores(nprocs), cam, tf, step=0.8,
        hints=IOHints(cb_buffer_size=4096, cb_nodes=2),
    )


class TestRendererPlanCache:
    def test_cache_hit_renders_identical_image(self, model, handle):
        cam = Camera.looking_at_volume(GRID, width=40, height=36)
        tf = TransferFunction.supernova(*model.value_range("vx"))
        pvr = make_pvr(cam, tf)
        cold = pvr.render_frame(handle)
        assert (pvr.plan_cache.misses, pvr.plan_cache.hits) == (1, 0)
        warm = pvr.render_frame(handle)
        assert (pvr.plan_cache.misses, pvr.plan_cache.hits) == (1, 1)
        # Geometry is cached, pixels are not: the warm frame must be
        # *bitwise* the cold frame, not merely close.
        assert np.array_equal(cold.image, warm.image)
        assert warm.timing.render_s == cold.timing.render_s

    def test_hit_matches_fresh_renderer(self, model, handle):
        cam = Camera.looking_at_volume(GRID, width=40, height=36, azimuth_deg=50.0)
        tf = TransferFunction.supernova(*model.value_range("vx"))
        pvr = make_pvr(cam, tf)
        pvr.render_frame(handle)
        warm = pvr.render_frame(handle)  # served from the plan cache
        fresh = make_pvr(cam, tf).render_frame(handle)  # cold cache
        assert np.array_equal(warm.image, fresh.image)

    def test_different_camera_misses(self, model, handle):
        tf = TransferFunction.supernova(*model.value_range("vx"))
        cam_a = Camera.looking_at_volume(GRID, width=32, height=32)
        pvr = make_pvr(cam_a, tf)
        pvr.render_frame(handle)
        pvr.camera = Camera.looking_at_volume(GRID, width=32, height=32, azimuth_deg=90.0)
        pvr.render_frame(handle)
        assert pvr.plan_cache.misses == 2
        assert len(pvr.plan_cache) == 2


class TestFramePlanCacheUnit:
    def test_hit_returns_same_object(self):
        cache = FramePlanCache()
        cam = Camera.looking_at_volume(GRID, width=24, height=24)
        a = cache.plan_for(cam, GRID, 8, 0.8, 1, "io", 4)
        b = cache.plan_for(cam, GRID, 8, 0.8, 1, "io", 4)
        assert a is b
        assert (cache.misses, cache.hits) == (1, 1)

    def test_eviction_bound(self):
        cache = FramePlanCache(max_entries=2)
        tfms = [
            Camera.looking_at_volume(GRID, width=16, height=16, azimuth_deg=float(a))
            for a in (0.0, 30.0, 60.0)
        ]
        for cam in tfms:
            cache.plan_for(cam, GRID, 4, 1.0, 1, "io", 2)
        assert len(cache) == 2
        # The oldest entry was evicted; asking again rebuilds it.
        cache.plan_for(tfms[0], GRID, 4, 1.0, 1, "io", 2)
        assert cache.misses == 4

    def test_eviction_is_lru_not_fifo(self):
        # Regression: hits used to leave recency untouched, so the
        # eviction order was insertion (FIFO) and an orbit campaign one
        # camera larger than the cache thrashed every revolution.
        cache = FramePlanCache(max_entries=2)
        cams = [
            Camera.looking_at_volume(GRID, width=16, height=16, azimuth_deg=float(a))
            for a in (0.0, 30.0, 60.0)
        ]
        cache.plan_for(cams[0], GRID, 4, 1.0, 1, "io", 2)
        cache.plan_for(cams[1], GRID, 4, 1.0, 1, "io", 2)
        cache.plan_for(cams[0], GRID, 4, 1.0, 1, "io", 2)  # refresh cams[0]
        cache.plan_for(cams[2], GRID, 4, 1.0, 1, "io", 2)  # evicts cams[1]
        misses = cache.misses
        cache.plan_for(cams[0], GRID, 4, 1.0, 1, "io", 2)  # must still hit
        assert cache.misses == misses
        cache.plan_for(cams[1], GRID, 4, 1.0, 1, "io", 2)  # was evicted
        assert cache.misses == misses + 1

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.sampled_from([2, 4, 7, 8, 12]),
    )
    def test_block_world_bounds_match_volume_block(self, seed, nprocs):
        # Ray plans are built from bare Block3D geometry before any
        # data exists; the bounds must agree with what VolumeBlock
        # derives once the data arrives, or cached plans would sample
        # the wrong world region.
        rng = np.random.default_rng(seed)
        # Dims >= 12 so even a prime nprocs (one long block-grid axis)
        # fits along any axis.
        grid = tuple(int(rng.integers(12, 24)) for _ in range(3))
        dec = BlockDecomposition(grid, nprocs)
        for b in dec.blocks():
            lo, hi = block_world_bounds(b, grid)
            rs, rc, gl = b.ghost_read(grid, ghost=1)
            sub = np.zeros(rc, np.float32)
            vb = VolumeBlock(sub, grid, b.start, b.count, gl)
            assert np.array_equal(lo, vb.world_lo)
            assert np.array_equal(hi, vb.world_hi)


class TestScheduleCache:
    def test_memoized_and_bypassable(self):
        clear_schedule_cache()
        cam = Camera.looking_at_volume(GRID, width=24, height=24)
        dec = BlockDecomposition(GRID, 8)
        a = schedule_from_geometry(dec, cam, 4)
        b = schedule_from_geometry(dec, cam, 4)
        assert a is b
        info = schedule_cache_info()
        assert info["hits"] >= 1 and info["size"] >= 1
        c = schedule_from_geometry(dec, cam, 4, cache=False)
        assert c is not a
        # The cold build must agree with the cached one.
        assert c.total_messages == a.total_messages
        assert c.tiles.tiles() == a.tiles.tiles()
        assert c.messages == a.messages

    def test_schedule_memo_evicts_lru_not_fifo(self):
        # Same regression as FramePlanCache: a hit must refresh
        # recency, or >max-entry orbits thrash every revolution.
        import repro.compositing.schedule as sched

        clear_schedule_cache()
        old_max, sched._SCHEDULE_CACHE_MAX = sched._SCHEDULE_CACHE_MAX, 2
        try:
            dec = BlockDecomposition(GRID, 8)
            cams = [
                Camera.looking_at_volume(GRID, width=24, height=24, azimuth_deg=float(a))
                for a in (0.0, 30.0, 60.0)
            ]
            schedule_from_geometry(dec, cams[0], 4)
            schedule_from_geometry(dec, cams[1], 4)
            schedule_from_geometry(dec, cams[0], 4)  # refresh cams[0]
            schedule_from_geometry(dec, cams[2], 4)  # evicts cams[1]
            misses = schedule_cache_info()["misses"]
            schedule_from_geometry(dec, cams[0], 4)  # must still hit
            assert schedule_cache_info()["misses"] == misses
            schedule_from_geometry(dec, cams[1], 4)  # was evicted
            assert schedule_cache_info()["misses"] == misses + 1
        finally:
            sched._SCHEDULE_CACHE_MAX = old_max
            clear_schedule_cache()
