"""Time-series driver."""

import numpy as np
import pytest

from repro.core import ParallelVolumeRenderer
from repro.core.timeseries import render_time_series
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle
from repro.render import Camera, TransferFunction
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld

GRID = (12, 12, 12)


@pytest.fixture(scope="module")
def handles():
    out = []
    for t in range(3):
        model = SupernovaModel(GRID, seed=5, time=0.5 * t)
        out.append(NetCDFHandle(write_vh1_netcdf(model), "vx"))
    return out


@pytest.fixture
def renderer():
    cam = Camera.looking_at_volume(GRID, width=24, height=24)
    tf = TransferFunction.supernova()
    return ParallelVolumeRenderer(
        MPIWorld.for_cores(8), cam, tf, step=0.9,
        hints=IOHints(cb_buffer_size=4096, cb_nodes=2),
    )


class TestTimeSeries:
    def test_renders_every_step(self, renderer, handles):
        res = render_time_series(renderer, handles)
        assert len(res.frames) == 3
        # Time steps differ, so images differ.
        assert not np.allclose(res.images[0], res.images[2], atol=1e-4)

    def test_aggregate_timing_sums(self, renderer, handles):
        res = render_time_series(renderer, handles)
        assert res.total_timing.total_s == pytest.approx(
            sum(f.timing.total_s for f in res.frames)
        )
        assert res.mean_frame_s > 0

    def test_orbit_moves_camera(self, renderer, handles):
        static = render_time_series(renderer, [handles[0]] * 3)
        orbit = render_time_series(renderer, [handles[0]] * 3, orbit_degrees_per_frame=40)
        # Same data: static frames identical, orbit frames not.
        assert np.allclose(static.images[0], static.images[2], atol=1e-6)
        assert not np.allclose(orbit.images[0], orbit.images[2], atol=1e-4)

    def test_camera_factory_wins(self, renderer, handles):
        cams = [Camera.looking_at_volume(GRID, width=24, height=24, azimuth_deg=a) for a in (0, 90)]
        res = render_time_series(renderer, [handles[0]] * 2, camera_factory=lambda i: cams[i])
        assert not np.allclose(res.images[0], res.images[1], atol=1e-4)

    def test_camera_restored_after_run(self, renderer, handles):
        before = renderer.camera
        render_time_series(renderer, handles, orbit_degrees_per_frame=15)
        assert renderer.camera is before

    def test_camera_restored_when_a_frame_raises(self, renderer, handles):
        # A mid-campaign failure must not leave the shared renderer
        # pointed at an orbit camera: farm-level reuse depends on it.
        before = renderer.camera

        def explode(i):
            if i == 1:
                raise RuntimeError("boom")
            return Camera.looking_at_volume(GRID, width=24, height=24, azimuth_deg=90)

        with pytest.raises(RuntimeError, match="boom"):
            render_time_series(renderer, handles, camera_factory=explode)
        assert renderer.camera is before

    def test_empty_series_rejected(self, renderer):
        with pytest.raises(ConfigError):
            render_time_series(renderer, [])
