"""The pipelined campaign driver vs the sequential oracle.

The tentpole invariant: at every prefetch depth, for every format,
camera path, engine backend, and fault plan, the pipelined renderer
produces frames *bitwise identical* to ``render_time_series`` — images,
per-frame timings, message counts.  Pipelining only changes the
campaign clock, and the campaign clock itself must reconcile:
``overlap_saved_s == sequential_s - makespan_s``, spans in a lane never
overlap, depth 0 reproduces the sequential makespan exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParallelVolumeRenderer, PipelinedTimeSeriesRenderer, render_time_series
from repro.core.timeseries import campaign_trace, simulate_pipeline
from repro.data import SupernovaModel, extract_variable_raw, write_vh1_netcdf
from repro.fault import FaultPlan, IOStraggler, NodeCrash
from repro.pio import IOHints, NetCDFHandle, RawHandle
from repro.render import Camera, TransferFunction
from repro.utils.errors import ConfigError
from repro.vmpi import MPIWorld, ParallelConfig

GRID = (12, 12, 12)
STEPS = 3


def _handles(fmt: str):
    out = []
    for t in range(STEPS):
        model = SupernovaModel(GRID, seed=5, time=0.3 + 0.2 * t)
        if fmt == "netcdf":
            out.append(NetCDFHandle(write_vh1_netcdf(model), "vx"))
        else:
            out.append(RawHandle(extract_variable_raw(model, "vx")))
    return out


@pytest.fixture(scope="module")
def netcdf_handles():
    return _handles("netcdf")


@pytest.fixture(scope="module")
def raw_handles():
    return _handles("raw")


def _renderer(**kwargs):
    cam = Camera.looking_at_volume(GRID, width=24, height=24)
    tf = TransferFunction.supernova()
    defaults = dict(step=0.9, hints=IOHints(cb_buffer_size=4096, cb_nodes=2))
    defaults.update(kwargs)
    return ParallelVolumeRenderer(MPIWorld.for_cores(8), cam, tf, **defaults)


def assert_frames_identical(pipelined, oracle):
    assert len(pipelined.frames) == len(oracle.frames)
    for i, (p, s) in enumerate(zip(pipelined.frames, oracle.frames)):
        assert np.array_equal(p.image, s.image), f"frame {i} image differs"
        assert p.timing == s.timing, f"frame {i} timing differs"
        assert p.messages == s.messages
        assert p.bytes_sent == s.bytes_sent


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("depth", [0, 1, 2])
    @pytest.mark.parametrize("fmt", ["netcdf", "raw"])
    def test_orbit_campaign_matches_oracle(self, depth, fmt, netcdf_handles, raw_handles):
        handles = netcdf_handles if fmt == "netcdf" else raw_handles
        renderer = _renderer()
        oracle = render_time_series(renderer, handles, orbit_degrees_per_frame=25.0)
        res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=depth).render(
            handles, orbit_degrees_per_frame=25.0
        )
        assert_frames_identical(res, oracle)
        assert res.accounting_failures() == []

    def test_fixed_camera_matches_oracle(self, netcdf_handles):
        renderer = _renderer()
        oracle = render_time_series(renderer, netcdf_handles)
        res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=2).render(netcdf_handles)
        assert_frames_identical(res, oracle)

    def test_camera_factory_matches_oracle(self, netcdf_handles):
        cams = [
            Camera.looking_at_volume(GRID, width=24, height=24, azimuth_deg=a)
            for a in (0.0, 120.0, 240.0)
        ]
        renderer = _renderer()
        oracle = render_time_series(renderer, netcdf_handles, camera_factory=lambda i: cams[i])
        res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=1).render(
            netcdf_handles, camera_factory=lambda i: cams[i]
        )
        assert_frames_identical(res, oracle)

    def test_under_fault_plan(self, netcdf_handles):
        """Prefetch must not perturb fault behavior: the frame program is
        byte-for-byte the same, so stragglers and crashes land identically."""
        fault = FaultPlan(
            seed=7,
            node_crashes=(NodeCrash(1.0, 1),),
            io_stragglers=(IOStraggler(0, 0.5),),
        )
        renderer = _renderer(fault=fault)
        oracle = render_time_series(renderer, netcdf_handles, orbit_degrees_per_frame=15.0)
        for depth in (0, 1, 2):
            res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=depth).render(
                netcdf_handles, orbit_degrees_per_frame=15.0
            )
            assert_frames_identical(res, oracle)
            assert res.accounting_failures() == []

    def test_with_parallel_engine(self, netcdf_handles):
        """Coexists with the sharded conservative-parallel DES backend:
        pipelined-sharded matches sequential-sharded bitwise (and both
        match the serial engine's images pixel for pixel)."""
        serial = _renderer()
        sharded = _renderer(parallel=ParallelConfig(workers=2))
        oracle = render_time_series(sharded, netcdf_handles, orbit_degrees_per_frame=20.0)
        res = PipelinedTimeSeriesRenderer(sharded, prefetch_depth=1).render(
            netcdf_handles, orbit_degrees_per_frame=20.0
        )
        assert_frames_identical(res, oracle)
        serial_res = render_time_series(serial, netcdf_handles, orbit_degrees_per_frame=20.0)
        for p, s in zip(res.frames, serial_res.frames):
            assert np.array_equal(p.image, s.image)

    def test_camera_restored_after_campaign(self, netcdf_handles):
        renderer = _renderer()
        before = renderer.camera
        PipelinedTimeSeriesRenderer(renderer, prefetch_depth=1).render(
            netcdf_handles, orbit_degrees_per_frame=30.0
        )
        assert renderer.camera is before

    def test_plan_cache_hits_on_every_frame(self, netcdf_handles):
        """The prefetch warms the plan cache; the render is a guaranteed hit."""
        renderer = _renderer()
        PipelinedTimeSeriesRenderer(renderer, prefetch_depth=2).render(
            netcdf_handles, orbit_degrees_per_frame=25.0
        )
        assert renderer.plan_cache.hits >= STEPS


class TestCampaignClock:
    def test_depth_zero_reproduces_sequential_makespan(self, netcdf_handles):
        renderer = _renderer()
        res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=0).render(netcdf_handles)
        assert res.makespan_s == pytest.approx(res.sequential_s)
        assert res.overlap_saved_s == pytest.approx(0.0)

    def test_overlap_reconciles(self, netcdf_handles):
        renderer = _renderer()
        res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=1).render(netcdf_handles)
        assert res.overlap_saved_s == pytest.approx(res.sequential_s - res.makespan_s)
        assert 0.0 <= res.overlap_saved_s <= res.sequential_s
        assert res.speedup >= 1.0
        assert res.accounting_failures() == []

    def test_makespan_is_wall_clock_not_stage_sum(self, netcdf_handles):
        """An I/O-heavy campaign's makespan beats the per-stage sums."""
        renderer = _renderer()
        res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=1).render(
            netcdf_handles, orbit_degrees_per_frame=20.0
        )
        # Still bounded below by the serialized I/O plus the last compute.
        io = sum(s.io_demand_s for s in res.timeline.slots)
        assert res.makespan_s >= io
        assert res.makespan_s <= res.sequential_s + 1e-9

    def test_rejects_empty_campaign(self):
        renderer = _renderer()
        with pytest.raises(ConfigError):
            PipelinedTimeSeriesRenderer(renderer).render([])

    def test_rejects_bad_depth_and_discipline(self):
        renderer = _renderer()
        with pytest.raises(ConfigError):
            PipelinedTimeSeriesRenderer(renderer, prefetch_depth=-1)
        with pytest.raises(ConfigError):
            PipelinedTimeSeriesRenderer(renderer, discipline="psychic")


class TestSimulatedPipeline:
    def _random_demands(self, seed, n=6):
        rng = np.random.default_rng(seed)
        return list(rng.uniform(0.1, 2.0, n)), list(rng.uniform(0.1, 2.0, n))

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("discipline", ["fifo", "fair"])
    def test_schedule_invariants_hold(self, seed, discipline):
        io, rc = self._random_demands(seed)
        for depth in (0, 1, 2, 3):
            tl = simulate_pipeline(io, rc, depth, discipline)
            assert tl.failures() == [], f"depth {depth}: {tl.failures()}"
            # Work conservation: one storage server, one compute lane.
            assert tl.makespan_s >= sum(io) - 1e-9
            assert tl.makespan_s >= sum(rc) - 1e-9
            assert tl.makespan_s <= sum(io) + sum(rc) + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_depth_monotonicity_fifo(self, seed):
        io, rc = self._random_demands(seed)
        spans = [simulate_pipeline(io, rc, d).makespan_s for d in (0, 1, 2, 3)]
        for a, b in zip(spans, spans[1:]):
            assert b <= a + 1e-9
        assert spans[0] == pytest.approx(sum(io) + sum(rc))

    def test_depth_one_overlaps_io_bound(self):
        # Equal frames, io = 2 * compute: fifo pins makespan at N*io + rc.
        tl = simulate_pipeline([2.0] * 5, [1.0] * 5, 1)
        assert tl.makespan_s == pytest.approx(11.0)
        tl0 = simulate_pipeline([2.0] * 5, [1.0] * 5, 0)
        assert tl0.makespan_s == pytest.approx(15.0)

    def test_depth_beyond_two_buys_nothing_fifo(self):
        io, rc = [2.0, 1.5, 2.5, 1.0], [1.0, 1.2, 0.8, 1.1]
        assert simulate_pipeline(io, rc, 2).makespan_s == pytest.approx(
            simulate_pipeline(io, rc, 8).makespan_s
        )

    def test_fair_sharing_is_pessimistic(self):
        """Equal-share contention can only slow the blocking read down."""
        io, rc = [1.0] * 4, [1.0] * 4
        fifo = simulate_pipeline(io, rc, 2, "fifo").makespan_s
        fair = simulate_pipeline(io, rc, 2, "fair").makespan_s
        assert fair >= fifo - 1e-9

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            simulate_pipeline([1.0, 2.0], [1.0], 1)


class TestCampaignTraceSpans:
    def test_lanes_never_overlap_within_a_stage(self, netcdf_handles):
        """Per-lane spans are disjoint: reads serialize on the storage
        station, computes serialize on the frame loop."""
        renderer = _renderer()
        res = PipelinedTimeSeriesRenderer(renderer, prefetch_depth=2).render(
            netcdf_handles, orbit_degrees_per_frame=25.0
        )
        lanes: dict[int, list] = {}
        for span in res.campaign_trace.spans:
            lanes.setdefault(span.rank, []).append(span)
        assert len(lanes) == 2  # io lane + compute lane
        for spans in lanes.values():
            spans.sort(key=lambda s: s.t0)
            for a, b in zip(spans, spans[1:]):
                assert b.t0 >= a.t1 - 1e-9, f"{a.name} overlaps {b.name}"

    def test_synthetic_trace_matches_timeline(self):
        tl = simulate_pipeline([1.0, 2.0, 1.5], [0.5, 0.7, 0.6], 1)
        tr = campaign_trace(tl)
        assert len(tr.spans) == 2 * len(tl.slots)
        assert max(s.t1 for s in tr.spans) == pytest.approx(tl.makespan_s)
