#!/usr/bin/env python
"""Multivariate visualization: two fields, one collective read.

Colours the X velocity, but only where the density field says there is
material — the two-field classification the paper's Sec. V points at.
Both variables come out of the netCDF time step in a single collective
read, whose data density is near 1.0 even for the record layout that
makes single-variable reads so expensive (compare Fig. 10).

    python examples/multivariate.py
"""

from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle, collective_read_blocks_multi, plan_read_blocks
from repro.render import (
    BlockDecomposition,
    Camera,
    MultivariateTransfer,
    TransferFunction,
    VolumeBlock,
    blank_image,
    composite_over,
    image_to_ppm,
    render_block_multivar,
)

GRID = (40, 40, 40)
CORES = 8


def main() -> None:
    model = SupernovaModel(GRID, seed=1530, time=1.0)
    nc = write_vh1_netcdf(model)
    handles = [NetCDFHandle(nc, "vx"), NetCDFHandle(nc, "density")]
    hints = IOHints(cb_buffer_size=1 << 16, cb_nodes=4)

    # One collective read delivers both variables to every rank's block.
    dec = BlockDecomposition(GRID, CORES)
    blocks = []
    ghost = []
    for b in dec.blocks():
        rs, rc, gl = b.ghost_read(GRID, ghost=1)
        blocks.append((rs, rc))
        ghost.append(gl)
    per_rank, report = collective_read_blocks_multi(handles, blocks, hints)
    single = plan_read_blocks(handles[0], nprocs=CORES, hints=hints)
    print(f"combined read: density {report.density:.3f} "
          f"(single-variable read of the same file: {single.density:.3f})")

    cam = Camera.looking_at_volume(GRID, width=144, height=144, azimuth_deg=30)
    primary = TransferFunction.supernova(*model.value_range("vx"))
    lo, hi = model.value_range("density")
    mvtf = MultivariateTransfer(primary, gate_lo=lo + 0.35 * (hi - lo), gate_hi=hi)

    partials = []
    for b, vars_, gl in zip(dec.blocks(), per_rank, ghost):
        p_blk = VolumeBlock(vars_["vx"], GRID, b.start, b.count, gl)
        m_blk = VolumeBlock(vars_["density"], GRID, b.start, b.count, gl)
        partial = render_block_multivar(cam, p_blk, m_blk, mvtf, step=0.7)
        if partial is not None:
            partials.append(partial)
    image = composite_over(blank_image(cam.width, cam.height), partials)

    with open("multivariate.ppm", "wb") as fh:
        fh.write(image_to_ppm(image, background=(0.02, 0.02, 0.05)))
    covered = float((image[..., 3] > 0.05).mean())
    print(f"wrote multivariate.ppm ({100 * covered:.1f}% of pixels show material)")


if __name__ == "__main__":
    main()
