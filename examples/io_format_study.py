#!/usr/bin/env python
"""The I/O study of Sec. V, both functionally and at paper scale.

Functional part (real bytes): writes a small 5-variable netCDF time
step, reads one variable back through the two-phase collective path
untuned and tuned, and renders the access logs as Fig. 9-style block
maps.

Model part (paper scale): plans the 1120^3 read for all five I/O modes
at 2K cores and prints the Fig. 10 time/density comparison.

    python examples/io_format_study.py
"""

from repro.analysis.asciiplot import ascii_bars
from repro.analysis.reports import format_table
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.model import DATASETS, FrameModel
from repro.pio import IOHints, NetCDFHandle, collective_read_blocks, tuned_netcdf_hints
from repro.render.decomposition import BlockDecomposition
from repro.storage.accesslog import AccessLog, BlockMap


def functional_study() -> None:
    grid = (24, 24, 24)
    model = SupernovaModel(grid, seed=9)
    nc = write_vh1_netcdf(model)
    handle = NetCDFHandle(nc, "pressure")
    dec = BlockDecomposition(grid, 8)
    blocks = [(b.start, b.count) for b in dec.blocks()]

    print("Functional study: reading 'pressure' out of a 5-variable record file")
    for label, hints in [
        ("untuned (big buffers straddle other variables)", IOHints(cb_buffer_size=1 << 15, cb_nodes=2)),
        ("tuned (buffer = one record slab)", tuned_netcdf_hints(handle.record_bytes, IOHints(cb_nodes=2))),
    ]:
        log = AccessLog()
        _arrays, report = collective_read_blocks(handle, blocks, hints, log=log)
        bm = BlockMap(handle.file_size(), nblocks=256).mark(log)
        print(f"\n  {label}")
        print(f"    {log.summary()}, density {report.density:.3f}")
        print("    " + bm.render(width=64, rows=2).replace("\n", "\n    "))


def paper_scale_study() -> None:
    fm = FrameModel(DATASETS["1120"])
    modes = ("raw", "netcdf64", "h5lite", "netcdf-tuned", "netcdf")
    stages = {m: fm.io_stage(m, 2048) for m in modes}
    print("\nPaper-scale study (Fig. 10): 1120^3 read by 2K cores")
    print(format_table(
        ["mode", "time (s)", "density", "physical (GB)", "accesses"],
        [[m, stages[m].seconds, stages[m].density,
          stages[m].physical_bytes / 1e9, stages[m].num_accesses] for m in modes],
    ))
    print()
    print(ascii_bars([(m, stages[m].seconds) for m in modes], unit="s"))


def main() -> None:
    functional_study()
    paper_scale_study()


if __name__ == "__main__":
    main()
