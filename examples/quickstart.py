#!/usr/bin/env python
"""Quickstart: render one frame of the synthetic supernova.

Builds a small VH-1-style netCDF time step, runs the paper's three-stage
pipeline (collective read -> parallel ray casting -> direct-send
compositing) on a simulated 16-core BG/P partition, and writes the image
as ``quickstart.ppm`` (viewable with most image tools).

    python examples/quickstart.py
"""

from repro.core import ParallelVolumeRenderer
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle
from repro.render import Camera, TransferFunction
from repro.render.image import image_to_ppm
from repro.vmpi import MPIWorld


def main() -> None:
    # 1. A time step of the synthetic core-collapse supernova
    #    (five 32-bit variables, netCDF record layout — Fig. 8's shape).
    grid = (48, 48, 48)
    model = SupernovaModel(grid, seed=1530, time=0.8)
    timestep = write_vh1_netcdf(model)
    print("time step written:", timestep.describe_layout(max_records=1))

    # 2. Camera, transfer function, and the renderer on 16 simulated cores.
    camera = Camera.looking_at_volume(grid, width=160, height=160,
                                      azimuth_deg=35, elevation_deg=20)
    transfer = TransferFunction.supernova(*model.value_range("vx"))
    world = MPIWorld.for_cores(16)
    renderer = ParallelVolumeRenderer(
        world, camera, transfer, step=0.6,
        hints=IOHints(cb_buffer_size=1 << 17, cb_nodes=4),
    )

    # 3. One frame: the X component of velocity, like the paper's Fig. 1.
    result = renderer.render_frame(NetCDFHandle(timestep, "vx"))

    print()
    print("frame timing (simulated):", result.timing)
    print(f"I/O data density: {result.io_report.density:.3f} "
          f"({result.io_report.num_accesses} physical accesses)")
    print(f"compositing: {result.num_compositors} compositors, "
          f"{result.schedule.total_messages} messages")

    with open("quickstart.ppm", "wb") as fh:
        fh.write(image_to_ppm(result.image, background=(0.02, 0.02, 0.05)))
    print("wrote quickstart.ppm")


if __name__ == "__main__":
    main()
