#!/usr/bin/env python
"""The whole scaling study, exported for your own plots.

Runs the paper's Fig. 3 + Fig. 5 sweeps through the calibrated model
and writes ``scaling_study.csv`` / ``scaling_study.json`` — every core
count, dataset, and stage time in machine-readable form — plus the
terminal log-log chart.

    python examples/scaling_study.py
"""

from repro.analysis.asciiplot import ascii_loglog
from repro.analysis.export import estimates_to_csv, estimates_to_json, sweep_cores
from repro.model import DATASETS, FrameModel

SWEEPS = {
    "1120": (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768),
    "2240": (2048, 4096, 8192, 16384, 32768),
    "4480": (2048, 4096, 8192, 16384, 32768),
}


def main() -> None:
    all_estimates = []
    curves = {}
    for name, cores in SWEEPS.items():
        fm = FrameModel(DATASETS[name])
        ests = sweep_cores(fm, cores)
        all_estimates.extend(ests)
        curves[f"{name}^3"] = (list(cores), [e.total_s for e in ests])

    print(ascii_loglog(curves, xlabel="cores", ylabel="total frame time (s)"))

    with open("scaling_study.csv", "w") as fh:
        fh.write(estimates_to_csv(all_estimates))
    with open("scaling_study.json", "w") as fh:
        fh.write(estimates_to_json(all_estimates))
    print(f"\nwrote scaling_study.csv / scaling_study.json "
          f"({len(all_estimates)} configurations)")

    best = min((e for e in all_estimates if e.dataset.name == "1120"), key=lambda e: e.total_s)
    print(f"best 1120^3 frame: {best.total_s:.2f} s at {best.cores} cores "
          "(paper: 5.9 s at 16384)")


if __name__ == "__main__":
    main()
