#!/usr/bin/env python
"""In-situ visualization: watch a simulation while it runs (Sec. VI).

Couples the block-parallel advection-diffusion solver to the renderer
on the same simulated partition: every other solver step is rendered
straight from the resident blocks — no time step ever touches storage.
Compares the measured in-loop cost against what writing and re-reading
each visualized step would have cost.

    python examples/insitu_visualization.py
"""

from repro.data.synthetic import supernova_field
from repro.insitu import AdvectionDiffusionSim, InSituPipeline
from repro.model import DATASETS, FrameModel
from repro.render import Camera, TransferFunction
from repro.render.image import image_to_ppm
from repro.vmpi import MPIWorld

GRID = (32, 32, 32)
CORES = 8
STEPS = 6
RENDER_EVERY = 2


def main() -> None:
    sim = AdvectionDiffusionSim(GRID, omega=0.12, kappa=0.03)
    camera = Camera.looking_at_volume(GRID, width=128, height=128, azimuth_deg=25)
    transfer = TransferFunction.grayscale_ramp(0, 1.6)
    initial = supernova_field(GRID, "density", seed=11)

    pipeline = InSituPipeline(MPIWorld.for_cores(CORES), sim, camera, transfer, step=0.7)
    result = pipeline.run(initial, steps=STEPS, render_every=RENDER_EVERY)

    for i, frame in enumerate(result.frames):
        name = f"insitu_frame{i}.ppm"
        with open(name, "wb") as fh:
            fh.write(image_to_ppm(frame, background=(0.02, 0.02, 0.05)))
        print(f"wrote {name}")

    print(f"\n{STEPS} solver steps, {len(result.frames)} frames, simulated seconds:")
    print(f"  solver compute : {result.sim_seconds:.4f}")
    print(f"  halo exchange  : {result.exchange_seconds:.4f}")
    print(f"  visualization  : {result.vis_seconds:.4f}")
    print(f"  I/O            : 0.0000  <- the point of in situ")

    # What the paper's measured workflow would pay per visualized step
    # at production scale (write + read of a 1120^3 variable at 16K cores):
    fm = FrameModel(DATASETS["1120"])
    est = fm.estimate(16384)
    print(f"\nat paper scale (1120^3, 16K cores) each visualized step would cost")
    print(f"  ~{2 * est.io.seconds:.1f} s of storage traffic the in-situ loop avoids")
    print(f"  (vs {est.render.seconds + est.composite.seconds:.2f} s of actual visualization work)")


if __name__ == "__main__":
    main()
