#!/usr/bin/env python
"""The paper's Sec. IV-B workflow: upsample, then visualize.

"Because data in the desired scale do not exist ... we upsampled the
existing supernova raw data format."  This example upsamples a time
step 2x in parallel (each rank produces one output block from its
input preimage), writes the result as a raw volume, and renders both
resolutions — the images should look the same, which is the point of
upsampling as a scaling methodology.

    python examples/upsample_and_render.py
"""

import numpy as np

from repro.core import ParallelVolumeRenderer
from repro.data import SupernovaModel
from repro.data.upsample import (
    input_region_for_output_block,
    upsample_parallel_program,
)
from repro.formats.raw import RawVolume
from repro.pio import RawHandle
from repro.render import BlockDecomposition, Camera, TransferFunction
from repro.render.image import image_to_ppm
from repro.vmpi import MPIWorld

GRID = (24, 24, 24)
FACTOR = 2
CORES = 8


def main() -> None:
    model = SupernovaModel(GRID, seed=4, time=1.2)
    data = model.field("vx")

    # --- Parallel upsampling (a separate preprocessing job, like the paper's).
    out_shape = tuple(s * FACTOR for s in GRID)
    dec = BlockDecomposition(out_shape, CORES)
    regions, inputs = [], []
    for b in dec.blocks():
        region = input_region_for_output_block(b.start, b.count, GRID, out_shape)
        regions.append(region)
        (rs, rc) = region
        inputs.append(data[rs[0]:rs[0]+rc[0], rs[1]:rs[1]+rc[1], rs[2]:rs[2]+rc[2]])
    res = MPIWorld.for_cores(CORES).run(
        upsample_parallel_program, inputs, regions, GRID, FACTOR
    )
    upsampled = np.empty(out_shape, dtype=np.float32)
    for b, block_out in zip(dec.blocks(), res.values):
        sl = tuple(slice(s, s + c) for s, c in zip(b.start, b.count))
        upsampled[sl] = block_out
    print(f"upsampled {GRID} -> {out_shape} on {CORES} ranks "
          f"(simulated {res.elapsed_s * 1e3:.1f} ms)")

    # --- Render both resolutions with matched cameras.
    tf = TransferFunction.supernova(*model.value_range("vx"))
    for tag, volume, step in (("orig", data, 0.6), ("up2x", upsampled, 1.2)):
        cam = Camera.looking_at_volume(volume.shape, width=128, height=128, azimuth_deg=35)
        renderer = ParallelVolumeRenderer(MPIWorld.for_cores(CORES), cam, tf, step=step)
        frame = renderer.render_frame(RawHandle(RawVolume.write(volume)))
        name = f"upsample_{tag}.ppm"
        with open(name, "wb") as fh:
            fh.write(image_to_ppm(frame.image, background=(0.02, 0.02, 0.05)))
        print(f"  {tag}: rendered {volume.shape} in {frame.timing.total_s:.2f} s "
              f"(simulated) -> {name}")
    print("the two images should look alike: 'resulting images are similar "
          "to those from the original data' (Sec. IV-B)")


if __name__ == "__main__":
    main()
