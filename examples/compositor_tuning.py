#!/usr/bin/env python
"""Reproduce the paper's compositing study at full scale.

Uses the calibrated performance model to sweep compositor counts for
the 1120^3 / 1600^2 configuration at 8K-32K cores — the experiment
behind Sec. IV-A's "we limit the number of compositors" contribution —
and prints the original-vs-improved comparison of Figs. 3 and 4.

    python examples/compositor_tuning.py
"""

from repro.analysis.reports import format_table
from repro.compositing.policy import IDENTITY_POLICY, PAPER_POLICY, fixed_policy
from repro.model import DATASETS, FrameModel
from repro.utils import fmt_bytes


def main() -> None:
    fm = FrameModel(DATASETS["1120"])

    print("Sweep: compositing time vs number of compositors m")
    print("(1120^3 data, 1600^2 image; every renderer also composites when m = n)\n")
    rows = []
    for cores in (8192, 16384, 32768):
        for m in (256, 1024, 2048, 4096, cores):
            stage = fm.composite_stage(cores, fixed_policy(m))
            rows.append([
                cores,
                "n" if m == cores else m,
                stage.seconds,
                stage.num_messages,
                fmt_bytes(stage.mean_message_bytes),
                f"{stage.contention_s:.3f}",
            ])
    print(format_table(
        ["cores", "m", "composite (s)", "messages", "mean msg", "contention (s)"], rows
    ))

    print("\nPaper's headline numbers at 32K cores:")
    orig = fm.estimate_original(32768)
    impr = fm.estimate(32768)
    print(f"  original (m = n): composite {orig.composite.seconds:.2f} s, "
          f"frame {orig.total_s:.2f} s")
    print(f"  improved (m = {PAPER_POLICY.compositors_for(32768)}): "
          f"composite {impr.composite.seconds:.3f} s, frame {impr.total_s:.2f} s")
    print(f"  -> compositing {orig.composite.seconds / impr.composite.seconds:.0f}x faster "
          f"(paper: 30x), frame {100 * (1 - impr.total_s / orig.total_s):.0f}% cheaper "
          f"(paper: 24%)")
    _ = IDENTITY_POLICY  # exported for interactive exploration


if __name__ == "__main__":
    main()
