#!/usr/bin/env python
"""Time-varying visualization: render a sequence of supernova steps.

The scenario the paper's introduction motivates: a simulation writes a
time step per file; the visualization reads each collectively and
renders it on the same machine.  This example runs four time steps end
to end, prints the per-stage timing for each (the paper's Fig. 3
instrumentation), and reports where the time goes (its Fig. 6 point:
I/O dominates).

    python examples/supernova_timesteps.py
"""

from repro.analysis.reports import format_table
from repro.core import ParallelVolumeRenderer
from repro.data import SupernovaModel, write_vh1_netcdf
from repro.pio import IOHints, NetCDFHandle, tuned_netcdf_hints
from repro.render import Camera, TransferFunction
from repro.render.image import image_to_ppm
from repro.vmpi import MPIWorld

GRID = (40, 40, 40)
CORES = 32
STEPS = 4


def main() -> None:
    camera = Camera.looking_at_volume(GRID, width=128, height=128, azimuth_deg=30)
    world = MPIWorld.for_cores(CORES)

    rows = []
    totals = {"io": 0.0, "render": 0.0, "composite": 0.0}
    for step_no in range(STEPS):
        model = SupernovaModel(GRID, seed=1530, time=0.4 * step_no)
        timestep = write_vh1_netcdf(model)
        handle = NetCDFHandle(timestep, "vx")
        # At paper scale the tuned buffer is one record slab (~5 MB);
        # at this toy grid a slab is a few KB, so keep a sane floor —
        # see examples/io_format_study.py for the real tuning study.
        hints = tuned_netcdf_hints(
            max(handle.record_bytes, 64 * 1024), IOHints(cb_nodes=8)
        )
        renderer = ParallelVolumeRenderer(
            world, camera, TransferFunction.supernova(*model.value_range("vx")),
            step=0.7, hints=hints,
        )
        result = renderer.render_frame(handle)
        t = result.timing
        rows.append([step_no, t.io_s, t.render_s, t.composite_s, t.total_s, f"{t.pct_io:.0f}%"])
        totals["io"] += t.io_s
        totals["render"] += t.render_s
        totals["composite"] += t.composite_s
        with open(f"supernova_t{step_no}.ppm", "wb") as fh:
            fh.write(image_to_ppm(result.image, background=(0.02, 0.02, 0.05)))

    print(format_table(
        ["step", "I/O (s)", "render (s)", "composite (s)", "total (s)", "% I/O"], rows
    ))
    grand = sum(totals.values())
    print(f"\nacross {STEPS} steps: I/O {100 * totals['io'] / grand:.1f}%, "
          f"render {100 * totals['render'] / grand:.1f}%, "
          f"composite {100 * totals['composite'] / grand:.1f}% "
          "(the paper: 'I/O dominates large-scale visualization')")
    print(f"wrote supernova_t0.ppm .. supernova_t{STEPS - 1}.ppm")


if __name__ == "__main__":
    main()
